package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTraceAppendAndLen(t *testing.T) {
	tr := &Trace{Name: "t"}
	if tr.Len() != 0 {
		t.Fatalf("empty trace Len = %d, want 0", tr.Len())
	}
	tr.Append(0x1000, 1, false)
	tr.Append(0x1008, 4, true)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if got := tr.Accesses[1]; got != (Access{Addr: 0x1008, IC: 4, Write: true}) {
		t.Fatalf("Accesses[1] = %+v", got)
	}
}

func TestSliceSharesBacking(t *testing.T) {
	tr := &Trace{Name: "t"}
	for i := 0; i < 10; i++ {
		tr.Append(uint64(i*64), uint64(i), false)
	}
	sub := tr.Slice(2, 5)
	if sub.Len() != 3 {
		t.Fatalf("sub.Len = %d, want 3", sub.Len())
	}
	if sub.Accesses[0].Addr != 128 {
		t.Fatalf("sub starts at %#x, want 0x80", sub.Accesses[0].Addr)
	}
	if sub.Name != "t" {
		t.Fatalf("sub.Name = %q", sub.Name)
	}
}

func TestReaderYieldsAllThenEOF(t *testing.T) {
	tr := &Trace{Name: "t"}
	for i := 0; i < 5; i++ {
		tr.Append(uint64(i), uint64(i), i%2 == 0)
	}
	r := NewReader(tr)
	var got []Access
	for {
		a, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, a)
	}
	if !reflect.DeepEqual(got, tr.Accesses) {
		t.Fatalf("reader yielded %v, want %v", got, tr.Accesses)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("second EOF read: %v", err)
	}
}

func TestCollectRoundTrip(t *testing.T) {
	tr := &Trace{Name: "orig"}
	for i := 0; i < 100; i++ {
		tr.Append(uint64(i*8), uint64(3*i), i%7 == 0)
	}
	got, err := Collect("copy", NewReader(tr))
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if got.Name != "copy" {
		t.Fatalf("name = %q", got.Name)
	}
	if !reflect.DeepEqual(got.Accesses, tr.Accesses) {
		t.Fatal("collected accesses differ")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Trace{Name: "bench/binary-roundtrip"}
	var ic uint64
	for i := 0; i < 5000; i++ {
		ic += uint64(rng.Intn(5))
		tr.Append(rng.Uint64()>>8, ic, rng.Intn(2) == 0)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name = %q, want %q", got.Name, tr.Name)
	}
	if !reflect.DeepEqual(got.Accesses, tr.Accesses) {
		t.Fatal("round-tripped accesses differ")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &Trace{Name: "empty"}); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Name != "empty" || got.Len() != 0 {
		t.Fatalf("got %q len %d", got.Name, got.Len())
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XX"),
		[]byte("NOPE----------------"),
		{'C', 'B', 'X', '1'},                   // truncated after magic
		{'C', 'B', 'X', '1', 0xff, 0xff, 0xff}, // absurd name length varint, truncated
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadBinary accepted garbage", i)
		}
	}
}

// Property: binary round trip preserves arbitrary traces with
// monotone instruction counts.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, writes []bool) bool {
		tr := &Trace{Name: "prop"}
		var ic uint64
		for i, a := range addrs {
			ic += uint64(i % 4)
			w := false
			if len(writes) > 0 {
				w = writes[i%len(writes)]
			}
			tr.Append(a, ic, w)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return got.Len() == tr.Len() && reflect.DeepEqual(got.Accesses, tr.Accesses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Name: "s"}
	// 4 accesses in 2 distinct 64B blocks, one write.
	tr.Append(0, 3, false)
	tr.Append(8, 6, false)
	tr.Append(64, 9, true)
	tr.Append(8, 12, false)
	s := Summarize(tr, 64)
	if s.Accesses != 4 || s.Writes != 1 || s.Blocks != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.FootprintBytes != 128 {
		t.Fatalf("footprint = %d", s.FootprintBytes)
	}
	if s.MinAddr != 0 || s.MaxAddr != 64 {
		t.Fatalf("span = [%d,%d]", s.MinAddr, s.MaxAddr)
	}
	if s.Instructions != 9 {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	if len(s.TopStrides) == 0 {
		t.Fatal("no strides recorded")
	}
}

func TestSummarizeEmptyAndDefaults(t *testing.T) {
	s := Summarize(&Trace{}, 0)
	if s.Accesses != 0 || s.Blocks != 0 {
		t.Fatalf("stats = %+v", s)
	}
	tr := &Trace{Accesses: []Access{{Addr: 100, IC: 1}}}
	s = Summarize(tr, 0) // zero block size defaults to 64
	if s.FootprintBytes != 64 {
		t.Fatalf("footprint = %d, want 64", s.FootprintBytes)
	}
	if s.String() == "" {
		t.Fatal("String is empty")
	}
}

func TestTopStridesRanked(t *testing.T) {
	tr := &Trace{}
	// stride 8 appears 6 times, stride 16 appears 2 times.
	addr := uint64(0)
	for i := 0; i < 7; i++ {
		tr.Append(addr, uint64(i), false)
		addr += 8
	}
	addr += 8 // skip to create a 16 stride
	tr.Append(addr, 7, false)
	addr += 16
	tr.Append(addr, 8, false)
	s := Summarize(tr, 64)
	if s.TopStrides[0].Stride != 8 {
		t.Fatalf("top stride = %d, want 8", s.TopStrides[0].Stride)
	}
}
