package trace

import (
	"math"
	"math/rand"
	"testing"
)

func seq(n int) *Trace {
	t := &Trace{Name: "seq"}
	for i := 0; i < n; i++ {
		t.Append(uint64(i)*64, uint64(i*3), i%5 == 0)
	}
	return t
}

func TestSystematicSample(t *testing.T) {
	tr := seq(100)
	s := Systematic(tr, 10, 3)
	if s.Len() != 30 {
		t.Fatalf("sampled %d, want 30", s.Len())
	}
	// First kept access of each period is the period's first access.
	if s.Accesses[3].Addr != 10*64 {
		t.Fatalf("second period starts at %#x", s.Accesses[3].Addr)
	}
	// Degenerate parameters return an empty trace, not a panic.
	if Systematic(tr, 0, 3).Len() != 0 || Systematic(tr, 5, 9).Len() != 0 {
		t.Fatal("degenerate parameters accepted")
	}
	// Tail shorter than sampleLen is kept.
	s2 := Systematic(seq(12), 10, 5)
	if s2.Len() != 5+2 {
		t.Fatalf("tail handling: %d", s2.Len())
	}
}

func TestRandomSampleRate(t *testing.T) {
	tr := seq(20000)
	s := RandomSample(tr, 0.25, 1)
	frac := float64(s.Len()) / float64(tr.Len())
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("sample fraction %v, want ~0.25", frac)
	}
	// Deterministic in seed.
	s2 := RandomSample(tr, 0.25, 1)
	if s.Len() != s2.Len() {
		t.Fatal("same seed produced different samples")
	}
}

func TestSamplingPreservesMissRateEstimate(t *testing.T) {
	// Sanity link to the SMARTS idea: a systematic sample of a
	// homogeneous random workload estimates the full miss rate.
	rng := rand.New(rand.NewSource(2))
	tr := &Trace{Name: "hom"}
	for i := 0; i < 50000; i++ {
		tr.Append(uint64(rng.Intn(1024))*64, uint64(i*3), false)
	}
	s := Systematic(tr, 100, 20)
	if s.Len() != 10000 {
		t.Fatalf("sample len %d", s.Len())
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := seq(4)
	b := &Trace{Name: "b"}
	for i := 0; i < 2; i++ {
		b.Append(uint64(1000+i)*64, uint64(i*3), false)
	}
	out := Interleave(2, a, b)
	if out.Len() != 6 {
		t.Fatalf("interleaved %d accesses", out.Len())
	}
	// Pattern: a a b b a a (b exhausted after first round).
	wantAddrs := []uint64{0, 64, 1000 * 64, 1001 * 64, 2 * 64, 3 * 64}
	for i, w := range wantAddrs {
		if out.Accesses[i].Addr != w {
			t.Fatalf("access %d addr %#x, want %#x", i, out.Accesses[i].Addr, w)
		}
	}
	// Instruction counts strictly increase.
	for i := 1; i < out.Len(); i++ {
		if out.Accesses[i].IC <= out.Accesses[i-1].IC {
			t.Fatal("interleaved IC not increasing")
		}
	}
}

// TestWindowPartitionRoundTrip: cutting a trace into consecutive IC
// windows and concatenating the pieces reproduces the original exactly
// — the invariant the store's cached sub-trace artifacts rely on.
func TestWindowPartitionRoundTrip(t *testing.T) {
	tr := seq(100) // ICs 0, 3, ..., 297
	var got []Access
	for from := uint64(0); from < 300; from += 75 {
		got = append(got, Window(tr, from, from+75).Accesses...)
	}
	if len(got) != tr.Len() {
		t.Fatalf("reassembled %d of %d accesses", len(got), tr.Len())
	}
	for i, a := range got {
		if a != tr.Accesses[i] {
			t.Fatalf("access %d: %+v != %+v", i, a, tr.Accesses[i])
		}
	}
}

// TestSystematicIdentityRoundTrip: a sample that keeps every period in
// full is the identity transform.
func TestSystematicIdentityRoundTrip(t *testing.T) {
	tr := seq(50)
	s := Systematic(tr, 10, 10)
	if s.Len() != tr.Len() {
		t.Fatalf("full sample has %d of %d accesses", s.Len(), tr.Len())
	}
	for i, a := range s.Accesses {
		if a != tr.Accesses[i] {
			t.Fatalf("access %d: %+v != %+v", i, a, tr.Accesses[i])
		}
	}
	// RandomSample with p=1 likewise keeps everything, in order.
	r := RandomSample(tr, 1.0, 7)
	if r.Len() != tr.Len() {
		t.Fatalf("p=1 sample has %d of %d accesses", r.Len(), tr.Len())
	}
}

// TestInterleaveWindowRoundTrip: each core's accesses survive an
// interleave in order with addresses and write flags intact, so the
// merged trace can be attributed back to its cores.
func TestInterleaveWindowRoundTrip(t *testing.T) {
	a, b := seq(6), seq(4)
	for i := range b.Accesses {
		b.Accesses[i].Addr += 1 << 32 // disjoint address ranges per core
	}
	out := Interleave(2, a, b)
	if out.Len() != a.Len()+b.Len() {
		t.Fatalf("interleaved %d of %d accesses", out.Len(), a.Len()+b.Len())
	}
	var gotA, gotB []Access
	for _, acc := range out.Accesses {
		if acc.Addr >= 1<<32 {
			gotB = append(gotB, acc)
		} else {
			gotA = append(gotA, acc)
		}
	}
	for i, acc := range gotA {
		if acc.Addr != a.Accesses[i].Addr || acc.Write != a.Accesses[i].Write {
			t.Fatalf("core A access %d: %+v != %+v", i, acc, a.Accesses[i])
		}
	}
	for i, acc := range gotB {
		if acc.Addr != b.Accesses[i].Addr || acc.Write != b.Accesses[i].Write {
			t.Fatalf("core B access %d: %+v != %+v", i, acc, b.Accesses[i])
		}
	}
}

func TestWindow(t *testing.T) {
	tr := seq(100) // ICs 0, 3, ..., 297
	w := Window(tr, 30, 60)
	if w.Len() != 10 {
		t.Fatalf("window has %d accesses", w.Len())
	}
	for _, a := range w.Accesses {
		if a.IC < 30 || a.IC >= 60 {
			t.Fatalf("IC %d outside window", a.IC)
		}
	}
}
