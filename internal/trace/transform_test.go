package trace

import (
	"math"
	"math/rand"
	"testing"
)

func seq(n int) *Trace {
	t := &Trace{Name: "seq"}
	for i := 0; i < n; i++ {
		t.Append(uint64(i)*64, uint64(i*3), i%5 == 0)
	}
	return t
}

func TestSystematicSample(t *testing.T) {
	tr := seq(100)
	s := Systematic(tr, 10, 3)
	if s.Len() != 30 {
		t.Fatalf("sampled %d, want 30", s.Len())
	}
	// First kept access of each period is the period's first access.
	if s.Accesses[3].Addr != 10*64 {
		t.Fatalf("second period starts at %#x", s.Accesses[3].Addr)
	}
	// Degenerate parameters return an empty trace, not a panic.
	if Systematic(tr, 0, 3).Len() != 0 || Systematic(tr, 5, 9).Len() != 0 {
		t.Fatal("degenerate parameters accepted")
	}
	// Tail shorter than sampleLen is kept.
	s2 := Systematic(seq(12), 10, 5)
	if s2.Len() != 5+2 {
		t.Fatalf("tail handling: %d", s2.Len())
	}
}

func TestRandomSampleRate(t *testing.T) {
	tr := seq(20000)
	s := RandomSample(tr, 0.25, 1)
	frac := float64(s.Len()) / float64(tr.Len())
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("sample fraction %v, want ~0.25", frac)
	}
	// Deterministic in seed.
	s2 := RandomSample(tr, 0.25, 1)
	if s.Len() != s2.Len() {
		t.Fatal("same seed produced different samples")
	}
}

func TestSamplingPreservesMissRateEstimate(t *testing.T) {
	// Sanity link to the SMARTS idea: a systematic sample of a
	// homogeneous random workload estimates the full miss rate.
	rng := rand.New(rand.NewSource(2))
	tr := &Trace{Name: "hom"}
	for i := 0; i < 50000; i++ {
		tr.Append(uint64(rng.Intn(1024))*64, uint64(i*3), false)
	}
	s := Systematic(tr, 100, 20)
	if s.Len() != 10000 {
		t.Fatalf("sample len %d", s.Len())
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := seq(4)
	b := &Trace{Name: "b"}
	for i := 0; i < 2; i++ {
		b.Append(uint64(1000+i)*64, uint64(i*3), false)
	}
	out := Interleave(2, a, b)
	if out.Len() != 6 {
		t.Fatalf("interleaved %d accesses", out.Len())
	}
	// Pattern: a a b b a a (b exhausted after first round).
	wantAddrs := []uint64{0, 64, 1000 * 64, 1001 * 64, 2 * 64, 3 * 64}
	for i, w := range wantAddrs {
		if out.Accesses[i].Addr != w {
			t.Fatalf("access %d addr %#x, want %#x", i, out.Accesses[i].Addr, w)
		}
	}
	// Instruction counts strictly increase.
	for i := 1; i < out.Len(); i++ {
		if out.Accesses[i].IC <= out.Accesses[i-1].IC {
			t.Fatal("interleaved IC not increasing")
		}
	}
}

func TestWindow(t *testing.T) {
	tr := seq(100) // ICs 0, 3, ..., 297
	w := Window(tr, 30, 60)
	if w.Len() != 10 {
		t.Fatalf("window has %d accesses", w.Len())
	}
	for _, a := range w.Accesses {
		if a.IC < 30 || a.IC >= 60 {
			t.Fatalf("IC %d outside window", a.IC)
		}
	}
}
