package trace

import (
	"fmt"
	"sort"
)

// Stats summarises the locality characteristics of a trace.
type Stats struct {
	// Accesses is the number of memory operations.
	Accesses int
	// Writes is the number of stores.
	Writes int
	// Blocks is the number of distinct cache blocks touched (for the
	// block size passed to Summarize).
	Blocks int
	// FootprintBytes is Blocks multiplied by the block size.
	FootprintBytes uint64
	// MinAddr and MaxAddr bound the addresses touched.
	MinAddr, MaxAddr uint64
	// TopStrides lists the most frequent successive address deltas,
	// most frequent first.
	TopStrides []StrideCount
	// Instructions is the instruction count spanned by the trace.
	Instructions uint64
}

// StrideCount records how often a particular successive address delta
// occurred.
type StrideCount struct {
	Stride int64
	Count  int
}

// Summarize computes Stats over t for the given cache block size.
func Summarize(t *Trace, blockSize uint64) Stats {
	if blockSize == 0 {
		blockSize = 64
	}
	s := Stats{Accesses: len(t.Accesses)}
	if len(t.Accesses) == 0 {
		return s
	}
	blocks := make(map[uint64]struct{})
	strides := make(map[int64]int)
	s.MinAddr = t.Accesses[0].Addr
	prev := t.Accesses[0].Addr
	for i, a := range t.Accesses {
		if a.Write {
			s.Writes++
		}
		blocks[a.Addr/blockSize] = struct{}{}
		if a.Addr < s.MinAddr {
			s.MinAddr = a.Addr
		}
		if a.Addr > s.MaxAddr {
			s.MaxAddr = a.Addr
		}
		if i > 0 {
			strides[int64(a.Addr-prev)]++
		}
		prev = a.Addr
	}
	s.Blocks = len(blocks)
	s.FootprintBytes = uint64(len(blocks)) * blockSize
	s.Instructions = t.Accesses[len(t.Accesses)-1].IC - t.Accesses[0].IC
	for st, c := range strides {
		s.TopStrides = append(s.TopStrides, StrideCount{Stride: st, Count: c})
	}
	sort.Slice(s.TopStrides, func(i, j int) bool {
		if s.TopStrides[i].Count != s.TopStrides[j].Count {
			return s.TopStrides[i].Count > s.TopStrides[j].Count
		}
		return s.TopStrides[i].Stride < s.TopStrides[j].Stride
	})
	if len(s.TopStrides) > 8 {
		s.TopStrides = s.TopStrides[:8]
	}
	return s
}

// String renders a one-line human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d writes=%d blocks=%d footprint=%dB span=[%#x,%#x] instrs=%d",
		s.Accesses, s.Writes, s.Blocks, s.FootprintBytes, s.MinAddr, s.MaxAddr, s.Instructions)
}
