package baseline

import (
	"math/rand"
	"sort"

	"cachebox/internal/cachesim"
	"cachebox/internal/trace"
)

// TabularVariant selects the conditioning scheme of the tabular
// synthesiser, mirroring the three REaLTabFormer rows of the paper's
// Table 1.
type TabularVariant int

const (
	// TabBase samples address deltas independently from the empirical
	// distribution (no conditioning).
	TabBase TabularVariant = iota
	// TabRD conditions delta sampling on a coarse reuse-distance
	// bucket, the "RD" variant.
	TabRD
	// TabIC conditions delta sampling on the previous delta (a
	// first-order Markov chain), the "IC" variant.
	TabIC
)

// String names the variant as in Table 1.
func (v TabularVariant) String() string {
	switch v {
	case TabBase:
		return "tab-base"
	case TabRD:
		return "tab-rd"
	case TabIC:
		return "tab-ic"
	default:
		return "tab-unknown"
	}
}

// Tabular is a statistical trace synthesiser: it learns a (possibly
// conditioned) distribution over block-address deltas from the real
// trace, generates a synthetic workload, and reports the synthetic
// workload's simulated miss rate — the methodology of memory workload
// synthesis via generative models.
type Tabular struct {
	Variant TabularVariant
	Seed    int64
	// SynthLen caps the synthetic trace length (default: original
	// length, capped at 200k).
	SynthLen int
}

// Name implements Predictor.
func (tb *Tabular) Name() string { return tb.Variant.String() }

// cdf is a sampled categorical distribution over deltas.
type cdf struct {
	deltas []int64
	cum    []float64
}

func buildCDF(counts map[int64]int, keep int) cdf {
	type dc struct {
		d int64
		c int
	}
	var all []dc
	//lint:ignore map-range-numeric pair collection is order-independent; the sort below is fully deterministic
	for d, c := range counts {
		all = append(all, dc{d, c})
	}
	// Tie-break equal counts by delta so the CDF does not depend on map
	// iteration order.
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].d < all[j].d
	})
	if len(all) > keep {
		all = all[:keep]
	}
	total := 0.0
	for _, e := range all {
		total += float64(e.c)
	}
	var out cdf
	cum := 0.0
	for _, e := range all {
		cum += float64(e.c) / total
		out.deltas = append(out.deltas, e.d)
		out.cum = append(out.cum, cum)
	}
	return out
}

func (c cdf) sample(rng *rand.Rand) int64 {
	if len(c.deltas) == 0 {
		return 1
	}
	idx := sort.SearchFloat64s(c.cum, rng.Float64())
	if idx >= len(c.deltas) {
		idx = len(c.deltas) - 1
	}
	return c.deltas[idx]
}

// contextKey buckets the conditioning context per variant.
func contextKey(v TabularVariant, prevDelta int64, rdBucket int) int64 {
	switch v {
	case TabRD:
		return int64(rdBucket)
	case TabIC:
		// Bucket deltas coarsely so the table stays small.
		switch {
		case prevDelta == 0:
			return 0
		case prevDelta == 1:
			return 1
		case prevDelta == -1:
			return 2
		case prevDelta > 1 && prevDelta <= 16:
			return 3
		case prevDelta < -1 && prevDelta >= -16:
			return 4
		case prevDelta > 16:
			return 5
		default:
			return 6
		}
	default:
		return 0
	}
}

// rdBucketOf coarsens a stack distance into 6 buckets.
func rdBucketOf(d int) int {
	switch {
	case d < 0:
		return 5
	case d < 8:
		return 0
	case d < 64:
		return 1
	case d < 512:
		return 2
	case d < 4096:
		return 3
	default:
		return 4
	}
}

// Synthesize learns the conditioned delta model and generates a
// synthetic trace.
func (tb *Tabular) Synthesize(t *trace.Trace, cfg cachesim.Config) *trace.Trace {
	bits := blockBits(cfg)
	n := tb.SynthLen
	if n <= 0 {
		n = t.Len()
	}
	if n > 200000 {
		n = 200000
	}
	out := &trace.Trace{Name: t.Name + "." + tb.Name()}
	if t.Len() < 2 {
		return out
	}
	var dists []int
	if tb.Variant == TabRD {
		dists = StackDistances(t, bits)
	}
	// Learn per-context delta counts.
	tables := make(map[int64]map[int64]int)
	prev := int64(t.Accesses[0].Addr >> bits)
	prevDelta := int64(0)
	footprint := make(map[int64]struct{})
	footprint[prev] = struct{}{}
	for i, a := range t.Accesses[1:] {
		b := int64(a.Addr >> bits)
		d := b - prev
		rb := 0
		if dists != nil {
			rb = rdBucketOf(dists[i+1])
		}
		key := contextKey(tb.Variant, prevDelta, rb)
		m := tables[key]
		if m == nil {
			m = make(map[int64]int)
			tables[key] = m
		}
		m[d]++
		prev, prevDelta = b, d
		footprint[b] = struct{}{}
	}
	cdfs := make(map[int64]cdf, len(tables))
	fallbackKey, haveFallback := int64(0), false
	//lint:ignore map-range-numeric populating one map from another is order-independent; the fallback key is minimised deterministically
	for k, m := range tables {
		cdfs[k] = buildCDF(m, 128)
		if !haveFallback || k < fallbackKey {
			fallbackKey, haveFallback = k, true
		}
	}
	// Generate.
	rng := rand.New(rand.NewSource(tb.Seed + int64(tb.Variant)*97 + 29))
	cur := int64(1 << 20)
	lo, hi := cur, cur+int64(len(footprint))
	prevDelta = 0
	rb := 0
	var ic uint64
	for i := 0; i < n; i++ {
		ic += 3
		key := contextKey(tb.Variant, prevDelta, rb)
		// An unseen context falls back to the smallest learned key
		// rather than an arbitrary map element, which changed per run.
		c, ok := cdfs[key]
		if !ok && haveFallback {
			c = cdfs[fallbackKey]
		}
		d := c.sample(rng)
		b := cur + d
		if b < lo {
			b = hi - (lo - b)
		}
		if hi > lo && b >= hi {
			b = lo + (b-hi)%int64(hi-lo)
		}
		out.Append(uint64(b)<<bits, ic, false)
		prevDelta = d
		cur = b
		if tb.Variant == TabRD {
			rb = rng.Intn(6) // the synthesiser has no true RD; sample contexts
		}
	}
	return out
}

// PredictMissRate implements Predictor.
func (tb *Tabular) PredictMissRate(t *trace.Trace, cfg cachesim.Config) float64 {
	if t.Len() == 0 {
		return 0
	}
	synth := tb.Synthesize(t, cfg)
	if synth.Len() == 0 {
		return 0
	}
	lt := cachesim.RunTrace(cachesim.New(cfg), synth)
	return lt.Stats.MissRate()
}
