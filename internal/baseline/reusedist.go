// Package baseline implements the comparison predictors of the paper's
// Table 1: hierarchical reuse distance (HRD), the spatio-temporal
// memory cloning model (STM), and a Markov tabular trace synthesiser
// standing in for the REaLTabFormer variants. Each predicts a cache's
// miss rate for a trace without running the GAN.
package baseline

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/trace"
)

// Predictor estimates the miss rate a cache configuration would incur
// on a trace.
type Predictor interface {
	// Name identifies the predictor.
	Name() string
	// PredictMissRate returns the estimated demand miss rate in [0,1].
	PredictMissRate(t *trace.Trace, cfg cachesim.Config) float64
}

// fenwick is a binary indexed tree over time positions, used to count
// distinct blocks between two accesses in O(log n).
type fenwick struct {
	n    int
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{n: n, tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum over [0, i].
func (f *fenwick) prefix(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum over [lo, hi].
func (f *fenwick) rangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	s := f.prefix(hi)
	if lo > 0 {
		s -= f.prefix(lo - 1)
	}
	return s
}

// StackDistances computes the LRU stack distance (number of distinct
// blocks accessed since the previous access to the same block) of each
// access, at the given block granularity. Cold accesses get distance
// -1. This is Mattson's algorithm with a Fenwick tree: O(N log N).
func StackDistances(t *trace.Trace, blockBits uint) []int {
	n := t.Len()
	out := make([]int, n)
	last := make(map[uint64]int, 1024)
	bit := newFenwick(n)
	for i, a := range t.Accesses {
		b := a.Addr >> blockBits
		if prev, ok := last[b]; ok {
			out[i] = bit.rangeSum(prev+1, i-1)
			bit.add(prev, -1)
		} else {
			out[i] = -1
		}
		bit.add(i, 1)
		last[b] = i
	}
	return out
}

// Histogram buckets stack distances; index len(counts)-1 collects cold
// accesses.
type Histogram struct {
	// Counts[d] is the number of accesses with stack distance d, for
	// d < MaxTracked; larger distances and cold misses are in Beyond
	// and Cold.
	Counts []int
	Beyond int
	Cold   int
	Total  int
}

// NewHistogram builds a stack-distance histogram tracking distances up
// to maxTracked.
func NewHistogram(dists []int, maxTracked int) *Histogram {
	h := &Histogram{Counts: make([]int, maxTracked)}
	for _, d := range dists {
		h.Total++
		switch {
		case d < 0:
			h.Cold++
		case d < maxTracked:
			h.Counts[d]++
		default:
			h.Beyond++
		}
	}
	return h
}
