package baseline

import (
	"math"
	"math/rand"
	"testing"

	"cachebox/internal/cachesim"
	"cachebox/internal/trace"
)

func blockTrace(blocks []uint64) *trace.Trace {
	t := &trace.Trace{Name: "bt"}
	for i, b := range blocks {
		t.Append(b*64, uint64(3*i), false)
	}
	return t
}

func TestStackDistancesKnown(t *testing.T) {
	// Sequence A B C A B A:
	// A: cold(-1)  B: cold  C: cold  A: 2 distinct since (B,C)
	// B: 2 (C,A)   A: 1 (B)
	tr := blockTrace([]uint64{10, 20, 30, 10, 20, 10})
	d := StackDistances(tr, 6)
	want := []int{-1, -1, -1, 2, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d (all %v)", i, d[i], want[i], d)
		}
	}
}

func TestStackDistanceRepeats(t *testing.T) {
	tr := blockTrace([]uint64{5, 5, 5, 5})
	d := StackDistances(tr, 6)
	if d[0] != -1 || d[1] != 0 || d[2] != 0 || d[3] != 0 {
		t.Fatalf("repeat distances %v", d)
	}
}

// Property: an access hits a fully-associative LRU cache of W lines
// exactly when its stack distance is < W; verify against cachesim.
func TestStackDistancePredictsFullyAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	blocks := make([]uint64, 5000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(64))
	}
	tr := blockTrace(blocks)
	d := StackDistances(tr, 6)
	for _, ways := range []int{1, 4, 16} {
		c := cachesim.New(cachesim.Config{Sets: 1, Ways: ways})
		for i, a := range tr.Accesses {
			got := c.Access(a.Addr, false)
			want := d[i] >= 0 && d[i] < ways
			if got != want {
				t.Fatalf("ways=%d access %d: sim=%v stackdist=%d", ways, i, got, d[i])
			}
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{-1, 0, 0, 3, 100}, 10)
	if h.Cold != 1 || h.Counts[0] != 2 || h.Counts[3] != 1 || h.Beyond != 1 || h.Total != 5 {
		t.Fatalf("histogram %+v", h)
	}
}

func TestBinomialCDFBelow(t *testing.T) {
	// P[Binomial(4, 0.5) < 3] = (1+4+6)/16 = 0.6875.
	if got := binomialCDFBelow(4, 0.5, 3); math.Abs(got-0.6875) > 1e-9 {
		t.Fatalf("cdf = %v, want 0.6875", got)
	}
	if binomialCDFBelow(10, 0.3, 0) != 0 {
		t.Fatal("k=0 should be 0")
	}
	if binomialCDFBelow(3, 0.3, 5) != 1 {
		t.Fatal("k>n should be 1")
	}
	// Large-n path must be close to the exact small-n formula family:
	// P[Bin(1000, 0.001) < 2] ≈ e^{-1}(1+1) ≈ 0.7358 (Poisson approx).
	got := binomialCDFBelow(1000, 0.001, 2)
	if got < 0.6 || got > 0.85 {
		t.Fatalf("large-n cdf = %v", got)
	}
}

func TestHRDAccuracyOnSimpleWorkloads(t *testing.T) {
	cfg := cachesim.Config{Sets: 64, Ways: 4} // 16 KiB
	rng := rand.New(rand.NewSource(2))
	workloads := map[string]*trace.Trace{}
	// Small randomly-placed loop: fits, near-zero miss. (Blocks are
	// drawn randomly so the binomial set-conflict assumption holds; a
	// perfectly sequential footprint distributes better than random
	// and HRD systematically over-predicts conflicts there — the kind
	// of model error the paper's Table 1 reports for HRD.)
	ws := make([]uint64, 128)
	for i := range ws {
		ws[i] = uint64(rng.Intn(1 << 20))
	}
	small := make([]uint64, 20000)
	for i := range small {
		small[i] = ws[i%len(ws)]
	}
	workloads["small-loop"] = blockTrace(small)
	// Huge random: almost every access misses.
	big := make([]uint64, 20000)
	for i := range big {
		big[i] = uint64(rng.Intn(1 << 20))
	}
	workloads["big-random"] = blockTrace(big)
	// Medium random: partial.
	med := make([]uint64, 20000)
	for i := range med {
		med[i] = uint64(rng.Intn(512))
	}
	workloads["med-random"] = blockTrace(med)

	h := &HRD{}
	for name, tr := range workloads {
		truth := cachesim.RunTrace(cachesim.New(cfg), tr).Stats.MissRate()
		pred := h.PredictMissRate(tr, cfg)
		if math.Abs(truth-pred) > 0.08 {
			t.Errorf("%s: HRD predicted %v, truth %v", name, pred, truth)
		}
	}
}

func TestHRDHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blocks := make([]uint64, 30000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(4096))
	}
	tr := blockTrace(blocks)
	cfgs := []cachesim.Config{
		{Sets: 16, Ways: 4},
		{Sets: 128, Ways: 8},
	}
	h := &HRD{}
	preds := h.PredictHierarchy(tr, cfgs)
	if len(preds) != 2 {
		t.Fatalf("preds = %v", preds)
	}
	hier, err := cachesim.NewHierarchy(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	lts := cachesim.RunHierarchy(hier, tr)
	for i := range cfgs {
		truth := lts[i].Stats.MissRate()
		if math.Abs(preds[i]-truth) > 0.15 {
			t.Errorf("level %d: HRD %v vs truth %v", i, preds[i], truth)
		}
	}
}

func TestSTMCloneStatistics(t *testing.T) {
	// A strided workload's clone must remain mostly strided and keep a
	// similar footprint.
	blocks := make([]uint64, 10000)
	for i := range blocks {
		blocks[i] = uint64((i * 3) % 1024)
	}
	tr := blockTrace(blocks)
	s := &STM{Seed: 1}
	cfg := cachesim.Config{Sets: 64, Ways: 4}
	clone := s.Clone(tr, cfg)
	if clone.Len() != tr.Len() {
		t.Fatalf("clone len %d, want %d", clone.Len(), tr.Len())
	}
	st := trace.Summarize(clone, 64)
	if st.Blocks < 256 || st.Blocks > 4096 {
		t.Fatalf("clone footprint %d blocks, original 1024", st.Blocks)
	}
}

func TestPredictorsRankSaneOnMixedWorkload(t *testing.T) {
	// All predictors must produce miss rates in [0,1] and be loosely
	// correlated with the truth on a mixed workload.
	rng := rand.New(rand.NewSource(4))
	blocks := make([]uint64, 30000)
	for i := range blocks {
		if i%3 == 0 {
			blocks[i] = uint64(rng.Intn(1 << 16))
		} else {
			blocks[i] = uint64(i % 256)
		}
	}
	tr := blockTrace(blocks)
	cfg := cachesim.Config{Sets: 64, Ways: 4}
	truth := cachesim.RunTrace(cachesim.New(cfg), tr).Stats.MissRate()
	preds := []Predictor{
		&HRD{},
		&STM{Seed: 2},
		&Tabular{Variant: TabBase, Seed: 3},
		&Tabular{Variant: TabRD, Seed: 3},
		&Tabular{Variant: TabIC, Seed: 3},
	}
	for _, p := range preds {
		got := p.PredictMissRate(tr, cfg)
		if got < 0 || got > 1 {
			t.Fatalf("%s: miss rate %v out of range", p.Name(), got)
		}
		if math.Abs(got-truth) > 0.5 {
			t.Errorf("%s: prediction %v wildly off truth %v", p.Name(), got, truth)
		}
	}
}

func TestTabularVariantsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blocks := make([]uint64, 20000)
	for i := range blocks {
		if i%2 == 0 {
			blocks[i] = uint64(i % 512)
		} else {
			blocks[i] = uint64(rng.Intn(8192))
		}
	}
	tr := blockTrace(blocks)
	cfg := cachesim.Config{Sets: 64, Ways: 4}
	base := (&Tabular{Variant: TabBase, Seed: 7}).PredictMissRate(tr, cfg)
	ic := (&Tabular{Variant: TabIC, Seed: 7}).PredictMissRate(tr, cfg)
	if base == ic {
		t.Fatal("conditioning has no effect on the synthesiser")
	}
	if (&Tabular{Variant: TabularVariant(99)}).Name() != "tab-unknown" {
		t.Fatal("unknown variant name")
	}
}

func TestPredictorsEmptyTrace(t *testing.T) {
	cfg := cachesim.Config{Sets: 4, Ways: 2}
	empty := &trace.Trace{}
	for _, p := range []Predictor{&HRD{}, &STM{}, &Tabular{}} {
		if got := p.PredictMissRate(empty, cfg); got != 0 {
			t.Fatalf("%s on empty trace = %v", p.Name(), got)
		}
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(2, 1)
	f.add(5, 1)
	f.add(9, 1)
	if f.rangeSum(0, 9) != 3 || f.rangeSum(3, 8) != 1 || f.rangeSum(6, 8) != 0 {
		t.Fatal("fenwick sums wrong")
	}
	f.add(5, -1)
	if f.rangeSum(0, 9) != 2 {
		t.Fatal("fenwick delete wrong")
	}
	if f.rangeSum(5, 3) != 0 {
		t.Fatal("inverted range should be 0")
	}
}
