package baseline

import (
	"math"

	"cachebox/internal/cachesim"
	"cachebox/internal/trace"
)

// HRD predicts miss rates from a single stack-distance profile using
// the binomial set-conflict model, in the spirit of hierarchical reuse
// distance (Maeda et al., HPCA'17): one trace pass yields predictions
// for every (sets, ways) point and every hierarchy level.
type HRD struct {
	// MaxTracked bounds the per-distance histogram; distances beyond
	// it are treated as certain misses (default 1<<16).
	MaxTracked int
}

// Name implements Predictor.
func (h *HRD) Name() string { return "hrd" }

func (h *HRD) maxTracked() int {
	if h.MaxTracked > 0 {
		return h.MaxTracked
	}
	return 1 << 16
}

// blockBits returns the kernel granularity for cfg.
func blockBits(cfg cachesim.Config) uint {
	bs := cfg.BlockSize
	if bs == 0 {
		bs = 64
	}
	bits := uint(0)
	for ; bs > 1; bs >>= 1 {
		bits++
	}
	return bits
}

// PredictMissRate implements Predictor.
func (h *HRD) PredictMissRate(t *trace.Trace, cfg cachesim.Config) float64 {
	if t.Len() == 0 {
		return 0
	}
	dists := StackDistances(t, blockBits(cfg))
	return h.predictFromDistances(dists, cfg)
}

// PredictHierarchy predicts the per-level miss rates of a hierarchy
// from one stack-distance pass — the "hierarchical" in HRD. The level
// i>0 prediction is conditional on missing all previous levels, using
// the exclusive-distance approximation (a level filters all accesses
// with distance below its capacity).
func (h *HRD) PredictHierarchy(t *trace.Trace, cfgs []cachesim.Config) []float64 {
	out := make([]float64, len(cfgs))
	if t.Len() == 0 || len(cfgs) == 0 {
		return out
	}
	dists := StackDistances(t, blockBits(cfgs[0]))
	for i, cfg := range cfgs {
		out[i] = h.predictFromDistances(dists, cfg)
	}
	// Convert absolute miss ratios into per-level local miss rates:
	// level i sees only the misses of level i-1.
	for i := len(out) - 1; i > 0; i-- {
		if out[i-1] > 0 {
			local := out[i] / out[i-1]
			if local > 1 {
				local = 1
			}
			out[i] = local
		} else {
			out[i] = 0
		}
	}
	return out
}

// predictFromDistances applies the binomial conflict model: an access
// with stack distance D hits a (S sets, A ways) LRU cache with
// probability P[Binomial(D, 1/S) < A].
func (h *HRD) predictFromDistances(dists []int, cfg cachesim.Config) float64 {
	sets, ways := cfg.Sets, cfg.Ways
	cap := sets * ways
	maxTracked := h.maxTracked()
	// Cache hit probabilities per distance (they repeat heavily).
	memo := make(map[int]float64)
	hitProb := func(d int) float64 {
		if d < ways {
			return 1 // fewer intervening blocks than ways: always hits
		}
		if d >= 4*cap {
			return 0
		}
		if p, ok := memo[d]; ok {
			return p
		}
		p := binomialCDFBelow(d, 1/float64(sets), ways)
		memo[d] = p
		return p
	}
	var hits float64
	total := 0
	for _, d := range dists {
		total++
		if d < 0 || d >= maxTracked {
			continue // cold or far: miss
		}
		hits += hitProb(d)
	}
	return 1 - hits/float64(total)
}

// binomialCDFBelow returns P[X < k] for X ~ Binomial(n, p), switching
// to a normal approximation for large n.
func binomialCDFBelow(n int, p float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > n {
		return 1
	}
	if n > 512 {
		// Normal approximation with continuity correction.
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		if sd == 0 {
			if float64(k) > mean {
				return 1
			}
			return 0
		}
		z := (float64(k) - 0.5 - mean) / sd
		return 0.5 * (1 + math.Erf(z/math.Sqrt2))
	}
	// Exact summation in log space for stability.
	q := 1 - p
	logP, logQ := math.Log(p), math.Log(q)
	var cdf float64
	logC := 0.0 // log C(n, 0)
	for i := 0; i < k; i++ {
		if i > 0 {
			logC += math.Log(float64(n-i+1)) - math.Log(float64(i))
		}
		cdf += math.Exp(logC + float64(i)*logP + float64(n-i)*logQ)
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf
}
