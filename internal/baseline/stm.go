package baseline

import (
	"math/rand"
	"sort"

	"cachebox/internal/cachesim"
	"cachebox/internal/trace"
)

// STM clones a workload's spatio-temporal behaviour (after Awad &
// Solihin, HPCA'14): it profiles the trace's stride patterns and
// temporal reuse, generates a synthetic clone with the same statistics,
// and reports the clone's simulated miss rate.
type STM struct {
	// Seed drives clone generation.
	Seed int64
	// CloneLen is the synthetic trace length; 0 clones at the original
	// length (capped at 200k accesses for speed).
	CloneLen int
}

// Name implements Predictor.
func (s *STM) Name() string { return "stm" }

// stmProfile captures the statistics STM clones.
type stmProfile struct {
	// strideCDF is the empirical distribution over the most common
	// address deltas (block granularity).
	strides []int64
	weights []float64 // cumulative
	// footprint is the number of distinct blocks.
	footprint int
	// reuseCDF approximates temporal reuse: probability that the next
	// access revisits a recently used block, per recency bucket.
	reuseProb float64
	recentLen int
}

// profile builds the STM statistics from a trace.
func (s *STM) profile(t *trace.Trace, bits uint) stmProfile {
	p := stmProfile{recentLen: 64}
	if t.Len() < 2 {
		p.footprint = 1
		p.strides = []int64{1}
		p.weights = []float64{1}
		return p
	}
	strideCount := make(map[int64]int)
	blocks := make(map[uint64]struct{})
	prev := t.Accesses[0].Addr >> bits
	blocks[prev] = struct{}{}
	reuse := 0
	recent := make([]uint64, 0, p.recentLen)
	for _, a := range t.Accesses[1:] {
		b := a.Addr >> bits
		strideCount[int64(b)-int64(prev)]++
		blocks[b] = struct{}{}
		for _, r := range recent {
			if r == b {
				reuse++
				break
			}
		}
		recent = append(recent, b)
		if len(recent) > p.recentLen {
			recent = recent[1:]
		}
		prev = b
	}
	p.footprint = len(blocks)
	p.reuseProb = float64(reuse) / float64(t.Len()-1)
	type sc struct {
		s int64
		c int
	}
	var scs []sc
	//lint:ignore map-range-numeric pair collection is order-independent; the sort below is fully deterministic
	for st, c := range strideCount {
		scs = append(scs, sc{st, c})
	}
	// Tie-break equal counts by stride so the profile (and therefore
	// the clone) does not depend on map iteration order.
	sort.Slice(scs, func(i, j int) bool {
		if scs[i].c != scs[j].c {
			return scs[i].c > scs[j].c
		}
		return scs[i].s < scs[j].s
	})
	if len(scs) > 64 {
		scs = scs[:64] // keep the dominant strides, as STM's tables do
	}
	total := 0.0
	for _, e := range scs {
		total += float64(e.c)
	}
	cum := 0.0
	for _, e := range scs {
		cum += float64(e.c) / total
		p.strides = append(p.strides, e.s)
		p.weights = append(p.weights, cum)
	}
	return p
}

// Clone generates a synthetic trace with the profiled statistics.
func (s *STM) Clone(t *trace.Trace, cfg cachesim.Config) *trace.Trace {
	bits := blockBits(cfg)
	p := s.profile(t, bits)
	n := s.CloneLen
	if n <= 0 {
		n = t.Len()
	}
	if n > 200000 {
		n = 200000
	}
	rng := rand.New(rand.NewSource(s.Seed + 11))
	clone := &trace.Trace{Name: t.Name + ".stm-clone"}
	cur := int64(1 << 20)
	lo, hi := cur, cur+int64(p.footprint)
	recent := make([]int64, 0, p.recentLen)
	var ic uint64
	for i := 0; i < n; i++ {
		ic += 3
		var b int64
		if len(recent) > 0 && rng.Float64() < p.reuseProb {
			b = recent[rng.Intn(len(recent))]
		} else {
			// Sample a stride from the empirical CDF.
			x := rng.Float64()
			idx := sort.SearchFloat64s(p.weights, x)
			if idx >= len(p.strides) {
				idx = len(p.strides) - 1
			}
			b = cur + p.strides[idx]
			// Wrap within the footprint region to preserve working-set
			// size.
			if b < lo {
				b = hi - (lo - b)
			}
			if b >= hi {
				b = lo + (b-hi)%int64(p.footprint)
			}
		}
		cur = b
		recent = append(recent, b)
		if len(recent) > p.recentLen {
			recent = recent[1:]
		}
		clone.Append(uint64(b)<<bits, ic, false)
	}
	return clone
}

// PredictMissRate implements Predictor: simulate the clone.
func (s *STM) PredictMissRate(t *trace.Trace, cfg cachesim.Config) float64 {
	if t.Len() == 0 {
		return 0
	}
	clone := s.Clone(t, cfg)
	lt := cachesim.RunTrace(cachesim.New(cfg), clone)
	return lt.Stats.MissRate()
}
