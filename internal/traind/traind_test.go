package traind

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/serve"
	"cachebox/internal/store"
	"cachebox/internal/stream"
	"cachebox/internal/workload"
)

// tinyModelCfg is the miniature architecture the service tests train:
// 16×16 to match the test dataset's heatmap geometry.
func tinyModelCfg() core.Config {
	c := core.DefaultConfig()
	c.ImageSize = 16
	c.NGF = 4
	c.NDF = 4
	c.DLayers = 2
	c.CondHidden = 8
	c.CondChannels = 4
	c.Seed = 3
	return c
}

// buildTestDataset streams a small dataset into st and returns its
// manifest digest.
func buildTestDataset(t *testing.T, st *store.Store) string {
	t.Helper()
	hm := heatmap.DefaultConfig()
	hm.Height, hm.Width = 16, 16
	hm.WindowInstr = 120
	benches := workload.SpecLike(2, 2, 1500).Benchmarks[:2]
	cfgs := []cachesim.Config{{Sets: 64, Ways: 12, BlockSize: 64, Policy: cachesim.PolicyLRU}}
	_, sm, err := stream.Build(context.Background(), st, benches, cfgs,
		stream.BuildConfig{Name: "traind-test", Heatmap: hm, MaxWindows: 6})
	if err != nil {
		t.Fatal(err)
	}
	return sm.Digest
}

// newTestService boots a traind server over a fresh store with a
// dataset already built, returning the server, its base URL, the store
// and the dataset digest.
func newTestService(t *testing.T) (*Server, string, *store.Store, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest := buildTestDataset(t, st)
	s, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts.URL, st, digest
}

// jobSpec renders a submission body for the test dataset.
func jobSpec(t *testing.T, name, digest string, epochs, shards int) string {
	t.Helper()
	mc := tinyModelCfg()
	spec, err := json.Marshal(JobRequest{
		Name:  name,
		Model: &mc,
		Train: core.TrainConfig{
			Epochs:    epochs,
			BatchSize: 4,
			Seed:      1,
			Dataset:   core.DatasetSource{Kind: core.DatasetStream, Dataset: digest},
			Parallel:  core.Parallelism{Shards: shards},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(spec)
}

// do issues one request and returns status + trimmed body.
func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	//lint:ignore unchecked-error test teardown of a fully-read response body
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(raw))
}

// awaitJob polls a job until it reaches a terminal state.
func awaitJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := do(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d body %s", id, code, body)
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobLifecycleTrainsAndPublishes is the service e2e: a submitted
// job trains a sharded tiny model from the streamed dataset, publishes
// it into the store, and a store-backed serve registry hot-loads it and
// answers a prediction — train-to-serve with no restart in between.
func TestJobLifecycleTrainsAndPublishes(t *testing.T) {
	_, base, st, digest := newTestService(t)

	code, body := do(t, http.MethodPost, base+"/v1/jobs", jobSpec(t, "m16", digest, 2, 2))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", code, body)
	}
	var js JobStatus
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}
	if js.ID != "j1" || js.Name != "m16" || js.Epochs != 2 || js.Shards != 2 {
		t.Fatalf("accepted job %+v", js)
	}

	final := awaitJob(t, base, js.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job ended %s (error %q)", final.State, final.Error)
	}
	if final.EpochsDone != 2 {
		t.Fatalf("epochs_done = %d, want 2", final.EpochsDone)
	}
	if final.ModelDigest == "" || final.ModelSHA256 == "" {
		t.Fatalf("succeeded job carries no published model reference: %+v", final)
	}

	// The published entry must load into a store-backed serving registry
	// and answer a prediction.
	reg, err := serve.NewRegistryFromStore(st.Root())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(reg, serve.Config{})
	t.Cleanup(srv.Close)
	hts := httptest.NewServer(srv)
	t.Cleanup(hts.Close)
	pix := make([]float32, 16*16)
	for i := range pix {
		pix[i] = float32((i*7)%23) / 2
	}
	preq, err := json.Marshal(serve.PredictRequest{
		Model:  "m16",
		Access: serve.HeatmapJSON{H: 16, W: 16, Pix: pix},
		Sets:   64, Ways: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, body = do(t, http.MethodPost, hts.URL+"/v1/predict", string(preq))
	if code != http.StatusOK {
		t.Fatalf("predict against traind-trained model: status %d body %s", code, body)
	}
	var pr serve.PredictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "m16" || pr.HitRate < 0 || pr.HitRate > 1 {
		t.Fatalf("predict response %+v", pr)
	}

	// Retrain under a different recipe: the registry's hot reload must
	// pick up the newer entry for the same name without a restart.
	code, body = do(t, http.MethodPost, base+"/v1/jobs", jobSpec(t, "m16", digest, 3, 1))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d body %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}
	second := awaitJob(t, base, js.ID)
	if second.State != StateSucceeded {
		t.Fatalf("second job ended %s (error %q)", second.State, second.Error)
	}
	if second.ModelDigest == final.ModelDigest {
		t.Fatal("different recipe published the same store entry")
	}
	sum, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Replaced) != 1 || sum.Replaced[0] != "m16" {
		t.Fatalf("hot reload after retrain: %+v, want m16 replaced", sum)
	}
}

// TestOneJobAtATime pins the single-slot policy: while a job trains,
// submissions are refused with 409/busy, and DELETE cancels the run.
func TestOneJobAtATime(t *testing.T) {
	_, base, _, digest := newTestService(t)

	// A long job holds the slot; 500 epochs never finish before the
	// cancel below.
	code, body := do(t, http.MethodPost, base+"/v1/jobs", jobSpec(t, "slow", digest, 500, 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", code, body)
	}
	var js JobStatus
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}

	code, body = do(t, http.MethodPost, base+"/v1/jobs", jobSpec(t, "other", digest, 1, 1))
	if code != http.StatusConflict {
		t.Fatalf("second submit: status %d body %s, want 409", code, body)
	}
	var er errorResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil || er.Error.Code != CodeBusy {
		t.Fatalf("second submit body %s, want envelope code %q", body, CodeBusy)
	}

	code, body = do(t, http.MethodDelete, base+"/v1/jobs/"+js.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d body %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}
	if js.State != StateCanceled {
		t.Fatalf("canceled job state %q, want %q", js.State, StateCanceled)
	}

	// The slot is free again.
	code, body = do(t, http.MethodPost, base+"/v1/jobs", jobSpec(t, "next", digest, 1, 1))
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d body %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}
	if got := awaitJob(t, base, js.ID); got.State != StateSucceeded {
		t.Fatalf("post-cancel job ended %s (error %q)", got.State, got.Error)
	}

	// All three jobs are listed in submission order.
	code, body = do(t, http.MethodGet, base+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list []JobStatus
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].Name != "slow" || list[1].Name != "other" || list[2].Name != "next" {
		// "other" was refused, so only two jobs exist.
		if len(list) != 2 || list[0].Name != "slow" || list[1].Name != "next" {
			t.Fatalf("job list %+v", list)
		}
	}
}

// TestJobResumesFromCheckpoint: a canceled job that checkpointed
// resumes from its last epoch when resubmitted with a resume policy,
// finishing with the full epoch count but without retraining the
// completed epochs.
func TestJobResumesFromCheckpoint(t *testing.T) {
	_, base, _, digest := newTestService(t)

	mc := tinyModelCfg()
	submit := func(resume string) JobStatus {
		t.Helper()
		spec, err := json.Marshal(JobRequest{
			Name:  "resumable",
			Model: &mc,
			Train: core.TrainConfig{
				Epochs:    30,
				BatchSize: 4,
				Seed:      1,
				Dataset:   core.DatasetSource{Kind: core.DatasetStream, Dataset: digest},
				Checkpoint: core.CheckpointPolicy{
					Every:  1,
					Resume: resume,
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		code, body := do(t, http.MethodPost, base+"/v1/jobs", string(spec))
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d body %s", code, body)
		}
		var js JobStatus
		if err := json.Unmarshal([]byte(body), &js); err != nil {
			t.Fatal(err)
		}
		return js
	}

	js := submit("")
	// Let at least one epoch checkpoint land, then cancel.
	deadline := time.Now().Add(time.Minute)
	for {
		code, body := do(t, http.MethodGet, base+"/v1/jobs/"+js.ID, "")
		if code != http.StatusOK {
			t.Fatalf("poll: status %d body %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &js); err != nil {
			t.Fatal(err)
		}
		if js.EpochsDone >= 1 || terminal(js.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed an epoch")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !terminal(js.State) {
		// The tiny job may race to completion before the cancel lands;
		// a 409 job_done just means it finished on its own.
		if code, body := do(t, http.MethodDelete, base+"/v1/jobs/"+js.ID, ""); code != http.StatusOK && code != http.StatusConflict {
			t.Fatalf("cancel: status %d body %s", code, body)
		}
		js = awaitJob(t, base, js.ID)
	}
	if js.State == StateFailed {
		t.Fatalf("first run failed: %s", js.Error)
	}
	if js.EpochsDone >= 30 {
		t.Skipf("first run finished all epochs before cancel landed (done=%d); resume path not exercised", js.EpochsDone)
	}

	// Resubmit with opportunistic resume: the run continues from the
	// checkpointed epoch and reports full progress.
	js = submit("auto")
	final := awaitJob(t, base, js.ID)
	if final.State != StateSucceeded {
		t.Fatalf("resumed job ended %s (error %q)", final.State, final.Error)
	}
	if final.EpochsDone != 30 {
		t.Fatalf("resumed job epochs_done = %d, want 30", final.EpochsDone)
	}
}

// TestFailedJobReportsError: a job naming a nonexistent dataset fails
// with the resolution error in its status.
func TestFailedJobReportsError(t *testing.T) {
	_, base, _, _ := newTestService(t)
	code, body := do(t, http.MethodPost, base+"/v1/jobs", jobSpec(t, "ghost", "feedfacefeedface", 1, 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", code, body)
	}
	var js JobStatus
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}
	final := awaitJob(t, base, js.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("job over a missing dataset ended %+v, want failed with error", final)
	}
	if !strings.Contains(final.Error, "feedfacefeedface") {
		t.Fatalf("failure message %q does not name the dataset", final.Error)
	}
}

// TestMetricsExposition: the service exposes its Prometheus families.
func TestMetricsExposition(t *testing.T) {
	_, base, _, digest := newTestService(t)
	code, body := do(t, http.MethodPost, base+"/v1/jobs", jobSpec(t, "m", digest, 1, 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", code, body)
	}
	var js JobStatus
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, base, js.ID)
	code, body = do(t, http.MethodGet, base+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		`cbx_traind_jobs_total{state="succeeded"} 1`,
		"cbx_traind_epochs_total 1",
		"cbx_traind_requests_total",
		"cbx_traind_training 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestDatasetResolvesByName covers the name fallback of the shared
// dataset-resolution path: a job may reference the dataset by the
// -name it was built under, not only by manifest digest prefix.
func TestDatasetResolvesByName(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest := buildTestDataset(t, st)

	src, man, err := openDatasetIn(st, "traind-test")
	if err != nil {
		t.Fatal(err)
	}
	if man.Name != "traind-test" {
		t.Fatalf("name resolved to manifest %q, want %q (built as %s)", man.Name, "traind-test", digest)
	}
	if src.Len() == 0 {
		t.Fatal("name-resolved dataset has no samples")
	}
	if _, _, err := openDatasetIn(st, "no-such-dataset"); err == nil {
		t.Fatal("unknown dataset name resolved")
	}
}
