// Package traind is cbx-traind's engine: a data-parallel CB-GAN
// training service built on the redesigned versioned training API
// (core.TrainConfig). It is the training-side twin of internal/serve:
//
//   - a job control plane — POST /v1/jobs submits a training job
//     (model config + TrainConfig), GET /v1/jobs/{id} reports progress,
//     DELETE /v1/jobs/{id} cancels via the config's context hook;
//   - one job trains at a time (training saturates the machine; a
//     second submission gets HTTP 409 with code "busy");
//   - datasets stream out of the content-addressed artifact store
//     (internal/stream manifests), so the service never materialises a
//     dataset in memory;
//   - checkpoints land in the service work directory under the job's
//     model name, and Checkpoint.Resume is opportunistic, so a crashed
//     or restarted job resumes from its last epoch by resubmitting;
//   - finished models are published into the same store under kind
//     "model", where a store-backed cbx-serve registry hot-loads them
//     on its next reload — train-to-serve with no file copying.
//
// Errors use the same versioned envelope as internal/serve:
// {"error":{"code":"...","message":"..."}} with stable machine-readable
// codes. Everything is Go standard library only.
package traind

import (
	"cachebox/internal/core"
)

// Job lifecycle states. A job is created "pending", moves to "running"
// when the trainer picks it up (immediately — there is no queue), and
// ends in exactly one of the three terminal states.
const (
	StatePending   = "pending"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// terminal reports whether a job state is final.
func terminal(state string) bool {
	return state == StateSucceeded || state == StateFailed || state == StateCanceled
}

// JobRequest is the POST /v1/jobs body: everything a training run
// needs, self-contained.
type JobRequest struct {
	// Name is the model name the finished model is published under;
	// a store-backed cbx-serve registry serves it by this name.
	Name string `json:"name"`
	// Model is the CB-GAN architecture to train. Nil means
	// core.DefaultConfig() (the paper-shaped model).
	Model *core.Config `json:"model,omitempty"`
	// Train is the versioned training recipe. Its dataset section must
	// be kind "stream"; when its store path is empty the service's own
	// store is used. Checkpoint paths are resolved inside the service
	// work directory.
	Train core.TrainConfig `json:"train"`
}

// JobStatus is the wire form of a job (POST /v1/jobs, GET /v1/jobs,
// GET /v1/jobs/{id}). It deliberately carries no wall-clock fields:
// every field is a deterministic function of the job's inputs and
// progress, which keeps the API contract golden-testable.
type JobStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	// Epochs is the configured run length; EpochsDone counts completed
	// epochs (including epochs restored from a resumed checkpoint).
	Epochs     int `json:"epochs"`
	EpochsDone int `json:"epochs_done"`
	// Shards echoes the job's data-parallel shard count (1 = serial).
	Shards int `json:"shards"`
	// DLoss/GAdv/GL1 are the latest completed epoch's mean losses.
	DLoss float64 `json:"d_loss,omitempty"`
	GAdv  float64 `json:"g_adv,omitempty"`
	GL1   float64 `json:"g_l1,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// ModelDigest/ModelSHA256 identify the published store entry of a
	// succeeded job (the digest cbx-serve's store registry loads).
	ModelDigest string `json:"model_digest,omitempty"`
	ModelSHA256 string `json:"model_sha256,omitempty"`
}

// Stable machine-readable error codes of the traind v1 error envelope.
// Codes are part of the API contract (see the golden tests in
// contract_test.go): clients branch on the code, the message is for
// humans and may change.
const (
	CodeBadRequest    = "bad_request"    // malformed JSON or body
	CodeInvalidConfig = "invalid_config" // well-formed but unusable job spec
	CodeBusy          = "busy"           // a job is already training (one at a time)
	CodeNotFound      = "not_found"      // unknown job id
	CodeJobDone       = "job_done"       // cancel requested on a finished job
	CodeInternal      = "internal"       // everything else
)

// ErrorBody is the detail object of the v1 error envelope, identical
// in shape to internal/serve's.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorResponse is the JSON body of every non-2xx API response.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// healthResponse is the GET /healthz body. Training reports whether a
// job is mid-run so a deploy orchestrator can wait for idle.
type healthResponse struct {
	Status   string `json:"status"`
	Training bool   `json:"training"`
	Jobs     int    `json:"jobs"`
}
