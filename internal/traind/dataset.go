package traind

import (
	"fmt"

	"cachebox/internal/core"
	"cachebox/internal/store"
	"cachebox/internal/stream"
)

// OpenDatasetSource resolves a TrainConfig stream-dataset section to a
// lazily loading sample source: open the named store, resolve the
// manifest digest (full or unique prefix), and validate the dataset
// against it. This is the one shared resolution path for every trainer
// that accepts a `train.json` naming a streamed dataset — the cachebox
// CLI and the traind service both go through it.
func OpenDatasetSource(src core.DatasetSource) (core.SampleSource, *stream.Manifest, error) {
	if src.Kind != core.DatasetStream {
		return nil, nil, fmt.Errorf("traind: dataset kind %q is not %q", src.Kind, core.DatasetStream)
	}
	st, err := store.Open(src.Store)
	if err != nil {
		return nil, nil, err
	}
	return openDatasetIn(st, src.Dataset)
}

// openDatasetIn resolves a dataset reference inside an already-open
// store (the service path, which owns a long-lived store handle). A
// reference is a manifest digest prefix, or — matching how cbx-dataset
// names what it builds — a dataset name, resolved to the newest
// dataset manifest carrying it.
func openDatasetIn(st *store.Store, ref string) (core.SampleSource, *stream.Manifest, error) {
	digest, err := st.ResolvePrefix(ref)
	if err != nil {
		var nameErr error
		if digest, nameErr = resolveDatasetName(st, ref); nameErr != nil {
			return nil, nil, fmt.Errorf("traind: resolve dataset %q: %w", ref, err)
		}
	}
	man, _, err := stream.LoadManifest(st, digest)
	if err != nil {
		return nil, nil, err
	}
	ds, err := stream.OpenDataset(st, man)
	if err != nil {
		return nil, nil, err
	}
	return ds, man, nil
}

// resolveDatasetName finds the newest dataset manifest whose recorded
// build name equals ref. Names are not unique — every rebuild of a
// tweaked recipe publishes a fresh manifest under the same name — so
// newest-wins mirrors the serve registry's newest-per-name rule.
func resolveDatasetName(st *store.Store, ref string) (string, error) {
	entries, err := st.Entries()
	if err != nil {
		return "", err
	}
	best := -1
	for i, e := range entries {
		if e.Kind != stream.KindDataset || e.Inputs["name"] != ref {
			continue
		}
		if best < 0 || e.CreatedAt.After(entries[best].CreatedAt) {
			best = i
		}
	}
	if best < 0 {
		return "", fmt.Errorf("no dataset named %q", ref)
	}
	return entries[best].Digest, nil
}
