package traind

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"cachebox/internal/core"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/store"
)

// Config tunes the service. Store is required; everything else has
// sensible defaults.
type Config struct {
	// Store is the artifact store datasets are read from and finished
	// models are published into.
	Store *store.Store
	// WorkDir holds job checkpoints (default <store root>/traind).
	WorkDir string
	// Log, when non-nil, receives the active job's per-epoch progress
	// lines (default: discarded).
	Log io.Writer
	// MaxBodyBytes caps job-submission bodies (default 4 MiB).
	MaxBodyBytes int64
}

// trainMetrics bundles the service's operational metrics.
type trainMetrics struct {
	prom     *metrics.PromRegistry
	requests *metrics.CounterVec // by HTTP status code
	jobs     *metrics.CounterVec // by terminal state
	epochs   *metrics.Counter
}

func newTrainMetrics() *trainMetrics {
	p := metrics.NewPromRegistry()
	tm := &trainMetrics{prom: p}
	tm.requests = p.NewCounterVec("cbx_traind_requests_total",
		"API responses by HTTP status code.", "code")
	tm.jobs = p.NewCounterVec("cbx_traind_jobs_total",
		"Finished training jobs by terminal state.", "state")
	tm.epochs = p.NewCounter("cbx_traind_epochs_total",
		"Training epochs completed across all jobs.")
	return tm
}

// job is one submitted training run.
type job struct {
	status JobStatus
	req    JobRequest
	cancel context.CancelFunc
	done   chan struct{}
}

// Server is the training control-plane HTTP service. Create with New,
// mount as an http.Handler, Close to cancel and drain on shutdown.
type Server struct {
	cfg Config
	st  *store.Store
	m   *trainMetrics
	mux *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in submission order
	active *job     // nil when idle
	nextID int
}

// New wires a server around an artifact store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("traind: nil store")
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = filepath.Join(cfg.Store.Root(), "traind")
	}
	if err := os.MkdirAll(cfg.WorkDir, 0o755); err != nil {
		return nil, fmt.Errorf("traind: work dir: %w", err)
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	s := &Server{
		cfg:  cfg,
		st:   cfg.Store,
		m:    newTrainMetrics(),
		mux:  http.NewServeMux(),
		jobs: make(map[string]*job),
	}
	s.m.prom.NewGaugeFunc("cbx_traind_training",
		"1 while a job is mid-run, 0 when idle.",
		func() float64 {
			if s.training() {
				return 1
			}
			return 0
		})
	s.m.prom.NewGaugeFunc("cbx_traind_jobs",
		"Jobs known to this server (all states).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close cancels the active job (if any) and waits for it to finish, so
// its checkpoint — the resume point of the next submission — is
// complete on disk before the process exits.
func (s *Server) Close() {
	s.mu.Lock()
	j := s.active
	s.mu.Unlock()
	if j == nil {
		return
	}
	j.cancel()
	<-j.done
}

// training reports whether a job is mid-run.
func (s *Server) training() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active != nil && !terminal(s.active.status.State)
}

// respond writes a JSON response and counts it by status code.
func (s *Server) respond(w http.ResponseWriter, code int, v any) {
	s.m.requests.With(strconv.Itoa(code)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore unchecked-error a failed response write is the client's problem; the job state is already committed
	json.NewEncoder(w).Encode(v)
}

// fail writes the v1 JSON error envelope with the given HTTP status
// and stable machine-readable code.
func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	s.respond(w, status, errorResponse{Error: ErrorBody{Code: code, Message: msg}})
}

// validName keeps published model names safe as registry names and
// checkpoint file stems.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("job name is required")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("job name %q may only contain letters, digits, '-', '_' and '.'", name)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("job name %q may not start with '.'", name)
	}
	return nil
}

// handleSubmit implements POST /v1/jobs: validate the spec, claim the
// single training slot, and start the run.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "decode request: "+err.Error())
		return
	}
	if err := validName(req.Name); err != nil {
		s.fail(w, http.StatusBadRequest, CodeInvalidConfig, err.Error())
		return
	}
	mc := core.DefaultConfig()
	if req.Model != nil {
		mc = *req.Model
	}
	if err := mc.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, CodeInvalidConfig, "model config: "+err.Error())
		return
	}
	// The service trains from streamed store datasets only: an inline
	// dataset has no serialisable recipe to resolve on this side of the
	// process boundary. An omitted store means "the service's own".
	tc := req.Train
	if tc.Dataset.Kind == "" || tc.Dataset.Kind == core.DatasetStream {
		tc.Dataset.Kind = core.DatasetStream
		if tc.Dataset.Store == "" {
			tc.Dataset.Store = s.st.Root()
		}
	} else {
		s.fail(w, http.StatusBadRequest, CodeInvalidConfig,
			fmt.Sprintf("dataset kind %q: the training service accepts only %q datasets", tc.Dataset.Kind, core.DatasetStream))
		return
	}
	// Checkpoints live in the service work directory under the job's
	// name; client-supplied paths are ignored rather than trusted.
	ckpt := filepath.Join(s.cfg.WorkDir, req.Name+".ckpt")
	if tc.Checkpoint.Every > 0 {
		tc.Checkpoint.Path = ckpt
	} else {
		tc.Checkpoint.Path = ""
	}
	if tc.Checkpoint.Resume != "" {
		tc.Checkpoint.Resume = ckpt
	}
	if err := tc.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, CodeInvalidConfig, err.Error())
		return
	}
	req.Train = tc

	s.mu.Lock()
	if s.active != nil && !terminal(s.active.status.State) {
		id := s.active.status.ID
		s.mu.Unlock()
		s.fail(w, http.StatusConflict, CodeBusy,
			fmt.Sprintf("job %s is training; this service runs one job at a time", id))
		return
	}
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		req:    req,
		cancel: cancel,
		done:   make(chan struct{}),
		status: JobStatus{
			ID:     fmt.Sprintf("j%d", s.nextID),
			Name:   req.Name,
			State:  StatePending,
			Epochs: maxInt(req.Train.Epochs, 1),
			Shards: maxInt(req.Train.Parallel.Shards, 1),
		},
	}
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	s.active = j
	snap := j.status
	s.mu.Unlock()

	go s.run(j, ctx, mc)
	s.respond(w, http.StatusAccepted, snap)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// run executes one training job to a terminal state.
func (s *Server) run(j *job, ctx context.Context, mc core.Config) {
	defer close(j.done)
	runCtx, span := obs.Start(ctx, "traind.job")
	span.TagInt("epochs", j.status.Epochs)
	span.TagInt("shards", j.status.Shards)
	defer span.End()

	err := s.train(j, runCtx, mc)
	s.mu.Lock()
	switch {
	case err == nil:
		j.status.State = StateSucceeded
	case ctx.Err() != nil:
		j.status.State = StateCanceled
	default:
		j.status.State = StateFailed
		j.status.Error = err.Error()
	}
	state := j.status.State
	s.mu.Unlock()
	s.m.jobs.With(state).Inc()
}

// train is the fallible middle of run: resolve the dataset, train, and
// publish the finished model into the store.
func (s *Server) train(j *job, ctx context.Context, mc core.Config) error {
	s.mu.Lock()
	j.status.State = StateRunning
	tc := j.req.Train
	s.mu.Unlock()

	src, man, err := OpenDatasetSource(tc.Dataset)
	if err != nil {
		return err
	}
	m, err := core.NewModel(mc)
	if err != nil {
		return err
	}
	tc.Context = ctx
	tc.Log = s.cfg.Log
	tc.OnEpoch = func(es core.EpochStats) {
		s.m.epochs.Inc()
		s.mu.Lock()
		j.status.EpochsDone = es.Epoch + 1
		j.status.DLoss, j.status.GAdv, j.status.GL1 = es.DLoss, es.GAdv, es.GL1
		s.mu.Unlock()
	}
	stats, err := m.TrainSource(src, tc)
	if err != nil {
		return err
	}
	// The stats cover restored epochs too, so a resumed job that had
	// already finished reports full progress rather than zero.
	s.mu.Lock()
	j.status.EpochsDone = len(stats.Epochs)
	final := stats.Final()
	j.status.DLoss, j.status.GAdv, j.status.GL1 = final.DLoss, final.GAdv, final.GL1
	s.mu.Unlock()

	// Publish into the store under the job name. The key fingerprints
	// the full recipe, so retraining the same recipe republishes the
	// same entry while any change (dataset, epochs, shards, seed,
	// architecture) creates a new one; a store-backed cbx-serve registry
	// picks up the newest entry per name on its next reload.
	manDigest, err := s.st.ResolvePrefix(tc.Dataset.Dataset)
	if err != nil {
		manDigest = man.Name // foreign-store dataset: fall back to its manifest name
	}
	k := store.Key{
		Kind:   "model",
		Format: 1,
		Inputs: map[string]string{
			"name":    j.req.Name,
			"dataset": manDigest,
			"recipe":  recipeFingerprint(mc, tc),
		},
	}
	sm, err := s.st.Put(k, m.Save)
	if err != nil {
		return fmt.Errorf("traind: publish model: %w", err)
	}
	s.mu.Lock()
	j.status.ModelDigest = sm.Digest
	j.status.ModelSHA256 = sm.SHA256
	s.mu.Unlock()
	return nil
}

// recipeFingerprint hashes the deterministic training inputs (model
// architecture + serialisable TrainConfig) into a short key input.
func recipeFingerprint(mc core.Config, tc core.TrainConfig) string {
	// Checkpoint paths are service-local plumbing, not part of what the
	// trained bytes depend on.
	tc.Checkpoint = core.CheckpointPolicy{}
	tc.Parallel.Workers = 0 // worker count never changes the result
	blob, err := json.Marshal(struct {
		Model core.Config
		Train core.TrainConfig
	}{mc, tc})
	if err != nil {
		return "unencodable"
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

// handleList implements GET /v1/jobs: all jobs in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	s.mu.Unlock()
	s.respond(w, http.StatusOK, out)
}

// handleGet implements GET /v1/jobs/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var snap JobStatus
	if ok {
		snap = j.status
	}
	s.mu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	s.respond(w, http.StatusOK, snap)
}

// handleCancel implements DELETE /v1/jobs/{id}: cancel the run via its
// context and wait for it to reach a terminal state, so the response
// reports the settled outcome (checkpoint flushed, state final).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		s.fail(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	if terminal(j.status.State) {
		state := j.status.State
		s.mu.Unlock()
		s.fail(w, http.StatusConflict, CodeJobDone,
			fmt.Sprintf("job %s already finished (%s)", id, state))
		return
	}
	s.mu.Unlock()
	j.cancel()
	<-j.done
	s.mu.Lock()
	snap := j.status
	s.mu.Unlock()
	s.respond(w, http.StatusOK, snap)
}

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	s.respond(w, http.StatusOK, healthResponse{
		Status:   "ok",
		Training: s.training(),
		Jobs:     jobs,
	})
}

// handleMetrics implements GET /metrics in Prometheus text format,
// including the process-wide runtime counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	buf := append(s.m.prom.Expose(), metrics.Runtime.Expose()...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//lint:ignore unchecked-error a failed metrics scrape write is the scraper's problem
	w.Write(buf)
}
