package traind

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestErrorEnvelopeGolden pins the exact JSON bodies of the traind v1
// error envelope — the same {"error":{"code","message"}} shape as the
// serve API. These are contract tests: a byte-level change here is an
// API break and must bump the envelope version, not silently reshape
// the body.
func TestErrorEnvelopeGolden(t *testing.T) {
	_, base, _, digest := newTestService(t)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		golden     string
	}{
		{
			name: "missing name", method: "POST", path: "/v1/jobs",
			body:       `{"train":{"dataset":{"kind":"stream","dataset":"abc"}}}`,
			wantStatus: http.StatusBadRequest,
			golden:     `{"error":{"code":"invalid_config","message":"job name is required"}}`,
		},
		{
			name: "bad name", method: "POST", path: "/v1/jobs",
			body:       `{"name":"no/slashes","train":{}}`,
			wantStatus: http.StatusBadRequest,
			golden:     `{"error":{"code":"invalid_config","message":"job name \"no/slashes\" may only contain letters, digits, '-', '_' and '.'"}}`,
		},
		{
			name: "inline dataset", method: "POST", path: "/v1/jobs",
			body:       `{"name":"m","train":{"dataset":{"kind":"inline"}}}`,
			wantStatus: http.StatusBadRequest,
			golden:     `{"error":{"code":"invalid_config","message":"dataset kind \"inline\": the training service accepts only \"stream\" datasets"}}`,
		},
		{
			name: "negative epochs", method: "POST", path: "/v1/jobs",
			body:       `{"name":"m","train":{"epochs":-1,"dataset":{"kind":"stream","dataset":"abc"}}}`,
			wantStatus: http.StatusBadRequest,
			golden:     `{"error":{"code":"invalid_config","message":"core: negative epochs -1"}}`,
		},
		{
			name: "unknown job", method: "GET", path: "/v1/jobs/zzz",
			body:       "",
			wantStatus: http.StatusNotFound,
			golden:     `{"error":{"code":"not_found","message":"no job \"zzz\""}}`,
		},
		{
			name: "cancel unknown job", method: "DELETE", path: "/v1/jobs/zzz",
			body:       "",
			wantStatus: http.StatusNotFound,
			golden:     `{"error":{"code":"not_found","message":"no job \"zzz\""}}`,
		},
	}
	for _, tc := range cases {
		status, body := do(t, tc.method, base+tc.path, tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, status, tc.wantStatus, body)
		}
		if body != tc.golden {
			t.Errorf("%s: body mismatch\n got: %s\nwant: %s", tc.name, body, tc.golden)
		}
	}

	// Malformed JSON and unknown fields carry decoder-generated
	// messages; pin only the code.
	for _, bad := range []string{"{nope", `{"name":"m","surprise":1}`} {
		status, body := do(t, "POST", base+"/v1/jobs", bad)
		if status != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, status)
		}
		var er errorResponse
		if err := json.Unmarshal([]byte(body), &er); err != nil || er.Error.Code != CodeBadRequest {
			t.Errorf("body %q: response %q, want envelope with code %q", bad, body, CodeBadRequest)
		}
	}

	// The busy and job-done envelopes are exercised with a live job:
	// submit, cancel, then pin the finished-job conflict body (job IDs
	// are sequential, so the message is deterministic).
	status, body := do(t, "POST", base+"/v1/jobs", jobSpec(t, "pinned", digest, 500, 1))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	var js JobStatus
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatal(err)
	}
	status, body = do(t, "POST", base+"/v1/jobs", jobSpec(t, "second", digest, 1, 1))
	busyGolden := `{"error":{"code":"busy","message":"job j1 is training; this service runs one job at a time"}}`
	if status != http.StatusConflict || body != busyGolden {
		t.Errorf("busy envelope: status %d body %s\nwant 409 %s", status, body, busyGolden)
	}
	if status, body = do(t, "DELETE", base+"/v1/jobs/"+js.ID, ""); status != http.StatusOK {
		t.Fatalf("cancel: status %d body %s", status, body)
	}
	status, body = do(t, "DELETE", base+"/v1/jobs/"+js.ID, "")
	doneGolden := `{"error":{"code":"job_done","message":"job j1 already finished (canceled)"}}`
	if status != http.StatusConflict || body != doneGolden {
		t.Errorf("job-done envelope: status %d body %s\nwant 409 %s", status, body, doneGolden)
	}
}

// TestHealthzBodyGolden pins the exact /healthz JSON body.
func TestHealthzBodyGolden(t *testing.T) {
	_, base, _, _ := newTestService(t)
	status, body := do(t, "GET", base+"/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", status)
	}
	golden := `{"status":"ok","training":false,"jobs":0}`
	if body != golden {
		t.Fatalf("healthz body\n got: %s\nwant: %s", body, golden)
	}
}

// TestJobStatusBodyGolden pins the accepted-job wire form: every field
// is a deterministic function of the submission, so the exact bytes
// are part of the contract.
func TestJobStatusBodyGolden(t *testing.T) {
	_, base, _, digest := newTestService(t)
	status, body := do(t, "POST", base+"/v1/jobs", jobSpec(t, "golden", digest, 500, 2))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	golden := `{"id":"j1","name":"golden","state":"pending","epochs":500,"epochs_done":0,"shards":2}`
	if body != golden {
		t.Fatalf("accepted-job body\n got: %s\nwant: %s", body, golden)
	}
	if status, body = do(t, "DELETE", base+"/v1/jobs/j1", ""); status != http.StatusOK {
		t.Fatalf("cleanup cancel: status %d body %s", status, body)
	}
}
