package store

// Typed artifact helpers for the heatmap-pair datasets the harness
// memoises: the (access, miss) heatmap pairs produced by running the
// ground-truth simulator over one benchmark under one cache config.
// The key captures every input that can change the pair bytes —
// benchmark identity and generator parameters, the full cachesim and
// heatmap configs, the harness pair cap, and the dataset split seed —
// so a change to any of them misses cleanly instead of serving stale
// data.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"cachebox/internal/cachesim"
	"cachebox/internal/heatmap"
	"cachebox/internal/workload"
)

// PairsFormat versions the gob encoding of PairsArtifact. Bump on any
// change to the payload layout.
const PairsFormat = 1

// PairsArtifact is the stored form of one benchmark×config simulation
// result: the heatmap pairs plus the simulator's measured hit rate.
type PairsArtifact struct {
	Pairs   []heatmap.Pair
	HitRate float64
}

// PairsKey derives the store key for a benchmark×config simulation.
// splitSeed keys the dataset split the pairs feed into, so runs with
// different train/test splits never share an entry.
func PairsKey(b workload.Benchmark, cfg cachesim.Config, hm heatmap.Config, maxPairs int, splitSeed int64) Key {
	return Key{
		Kind:   "pairs",
		Format: PairsFormat,
		Inputs: map[string]string{
			"bench":      b.Name,
			"group":      b.Group,
			"suite":      b.Suite,
			"bench_ops":  fmt.Sprintf("%d", b.Ops),
			"bench_seed": fmt.Sprintf("%d", b.Seed),
			"cache":      fmt.Sprintf("%+v", cfg),
			"heatmap":    fmt.Sprintf("%+v", hm),
			"max_pairs":  fmt.Sprintf("%d", maxPairs),
			"split_seed": fmt.Sprintf("%d", splitSeed),
		},
	}
}

// SavePairs stores the artifact under k.
func (s *Store) SavePairs(k Key, art *PairsArtifact) error {
	_, err := s.Put(k, func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(art); err != nil {
			return fmt.Errorf("store: encode pairs: %w", err)
		}
		return nil
	})
	return err
}

// LoadPairs fetches and decodes the artifact stored under k. The
// payload is read fully before decoding so the integrity hash is
// always verified, even though gob may not consume trailing bytes.
func (s *Store) LoadPairs(k Key) (*PairsArtifact, error) {
	data, _, err := s.GetBytes(k)
	if err != nil {
		return nil, err
	}
	var art PairsArtifact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&art); err != nil {
		return nil, fmt.Errorf("store: decode pairs: %w", err)
	}
	return &art, nil
}
