package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Key identifies an artifact by the inputs that produced it, not by
// its content: two runs that would compute the same thing derive the
// same key and therefore share one store entry. The digest is the
// SHA-256 of a canonical text encoding, so key equality is stable
// across processes, field-addition order, and map iteration order.
type Key struct {
	// Kind names the artifact family ("pairs", "model", ...). Entries
	// of different kinds never collide even with identical inputs.
	Kind string
	// Format versions the payload encoding. Bump it when the encoded
	// representation changes so stale entries miss instead of
	// deserialising garbage.
	Format int
	// Inputs are the producing parameters, as strings. Every input
	// that can change the artifact's bytes must be present.
	Inputs map[string]string
}

// Validate reports whether the key is usable.
func (k Key) Validate() error {
	if k.Kind == "" {
		return fmt.Errorf("store: key has empty kind")
	}
	if k.Format <= 0 {
		return fmt.Errorf("store: key %q has non-positive format %d", k.Kind, k.Format)
	}
	return nil
}

// canonical renders the key in a stable text form: a version line,
// then kind and format, then inputs sorted by name. All values are
// %q-quoted so embedded newlines or '=' cannot forge a collision.
func (k Key) canonical() string {
	names := make([]string, 0, len(k.Inputs))
	for name := range k.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "cbx-store/key/v1\nkind=%q\nformat=%d\n", k.Kind, k.Format)
	for _, name := range names {
		fmt.Fprintf(&b, "input:%q=%q\n", name, k.Inputs[name])
	}
	return b.String()
}

// Digest returns the key's hex SHA-256 content address.
func (k Key) Digest() string {
	sum := sha256.Sum256([]byte(k.canonical()))
	return hex.EncodeToString(sum[:])
}
