package store

import (
	"maps"
	"testing"
)

// FuzzStoreCanonicalKey checks the two properties every store key must
// hold: digests are stable (the same kind/format/inputs always hash
// identically, whatever order the map was built in) and injective
// (semantically different keys never share a digest — the %q quoting
// in canonical() must prevent newline/'=' boundary forgeries between
// kind, input names and input values).
func FuzzStoreCanonicalKey(f *testing.F) {
	f.Add("pairs", 1, "bench", "spec.gcc.p0", "sets", "64", "ways", "12")
	f.Add("model", 3, "epochs", "12", "seed", "42", "geom", "32x32")
	f.Add("k", 1, "a", "b\nc", "a=b", "c", "", "")
	f.Add("pairs", 1, "a", "b", "a", "b", "a", "b")
	f.Add("k\"v", 7, "in:\"x\"", "y", "input:", "=", "\n", "\n")
	f.Fuzz(func(t *testing.T, kind string, format int, k1, v1, k2, v2, k3, v3 string) {
		if kind == "" || format <= 0 {
			return // Validate() rejects these before they reach a store
		}
		base := Key{Kind: kind, Format: format,
			Inputs: map[string]string{k1: v1, k2: v2, k3: v3}}

		// Stability: rebuilding the same inputs in reverse insertion
		// order must not change the canonical form or the digest.
		rev := make(map[string]string, 3)
		rev[k3] = v3
		rev[k2] = v2
		rev[k1] = v1
		same := Key{Kind: kind, Format: format, Inputs: rev}
		// Duplicate fuzzed names make the two insertion orders build
		// genuinely different maps (last write wins), so only compare
		// digests when the final contents agree.
		if maps.Equal(base.Inputs, same.Inputs) && base.Digest() != same.Digest() {
			t.Fatalf("digest depends on insertion order:\n%q\nvs\n%q", base.canonical(), same.canonical())
		}

		// Injectivity: each variant below perturbs kind, format or the
		// inputs; its digest must differ from base exactly when the key
		// is semantically different.
		variants := []Key{
			{Kind: kind + "x", Format: format, Inputs: base.Inputs},
			{Kind: kind, Format: format + 1, Inputs: base.Inputs},
			{Kind: kind, Format: format, Inputs: map[string]string{k1: v2, k2: v1, k3: v3}},
			{Kind: kind, Format: format, Inputs: map[string]string{k1 + k2: v1 + v2, k3: v3}},
			{Kind: kind, Format: format, Inputs: map[string]string{k1: v1 + "\n" + k2 + "=" + v2, k3: v3}},
			{Kind: kind + "\n" + k1, Format: format, Inputs: map[string]string{k2: v2, k3: v3}},
			{Kind: kind, Format: format, Inputs: map[string]string{k1: v1, k2: v2}},
		}
		for i, v := range variants {
			equalKeys := base.Kind == v.Kind && base.Format == v.Format && maps.Equal(base.Inputs, v.Inputs)
			equalDigests := base.Digest() == v.Digest()
			if equalKeys != equalDigests {
				t.Fatalf("variant %d: equal keys=%v but equal digests=%v\nbase: %q\nvar:  %q",
					i, equalKeys, equalDigests, base.canonical(), v.canonical())
			}
		}
	})
}
