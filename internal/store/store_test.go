package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cachebox/internal/cachesim"
	"cachebox/internal/heatmap"
	"cachebox/internal/workload"
)

func testKey(n int) Key {
	return Key{
		Kind:   "test",
		Format: 1,
		Inputs: map[string]string{"n": fmt.Sprintf("%d", n)},
	}
}

func putBytes(t *testing.T, s *Store, k Key, data []byte) *Manifest {
	t.Helper()
	man, err := s.Put(k, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	return man
}

func TestKeyDigestStable(t *testing.T) {
	a := Key{Kind: "pairs", Format: 1, Inputs: map[string]string{"x": "1", "y": "2"}}
	b := Key{Kind: "pairs", Format: 1, Inputs: map[string]string{"y": "2", "x": "1"}}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest depends on input insertion order: %s vs %s", a.Digest(), b.Digest())
	}
	c := Key{Kind: "pairs", Format: 2, Inputs: a.Inputs}
	if a.Digest() == c.Digest() {
		t.Fatal("format bump did not change the digest")
	}
	d := Key{Kind: "model", Format: 1, Inputs: a.Inputs}
	if a.Digest() == d.Digest() {
		t.Fatal("kind change did not change the digest")
	}
}

func TestKeyDigestQuotingBlocksForgery(t *testing.T) {
	// Without quoting, {"a": "1\ninput:\"b\"=\"2\""} would collide
	// with {"a": "1", "b": "2"}.
	a := Key{Kind: "k", Format: 1, Inputs: map[string]string{"a": "1\ninput:\"b\"=\"2\""}}
	b := Key{Kind: "k", Format: 1, Inputs: map[string]string{"a": "1", "b": "2"}}
	if a.Digest() == b.Digest() {
		t.Fatal("newline in input value forged a key collision")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := []byte("hello artifact store")
	k := testKey(1)
	man := putBytes(t, s, k, payload)
	if man.Size != int64(len(payload)) {
		t.Fatalf("manifest size = %d, want %d", man.Size, len(payload))
	}
	if man.Kind != "test" || man.Inputs["n"] != "1" {
		t.Fatalf("manifest does not echo the key: %+v", man)
	}

	got, man2, err := s.GetBytes(k)
	if err != nil {
		t.Fatalf("GetBytes: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	if man2.SHA256 != man.SHA256 {
		t.Fatalf("manifest hash changed between put and get")
	}
}

func TestGetMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_, _, err = s.Get(testKey(404))
	if !errors.Is(err, ErrMiss) {
		t.Fatalf("Get on empty store: err = %v, want ErrMiss", err)
	}
}

func TestPutReplacesExisting(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(1)
	putBytes(t, s, k, []byte("first"))
	putBytes(t, s, k, []byte("second"))
	got, _, err := s.GetBytes(k)
	if err != nil {
		t.Fatalf("GetBytes: %v", err)
	}
	if string(got) != "second" {
		t.Fatalf("payload = %q, want %q", got, "second")
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("replacing a key left %d entries, want 1", len(entries))
	}
}

func TestCorruptionDetectedOnRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(1)
	putBytes(t, s, k, []byte("pristine payload bytes"))

	// Flip a byte in the payload behind the store's back.
	p := s.payloadPath(k.Digest())
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	if _, _, err := s.GetBytes(k); err == nil {
		t.Fatal("reading a corrupted payload succeeded; want integrity error")
	} else if !strings.Contains(err.Error(), "hash") {
		t.Fatalf("corruption error does not mention hash: %v", err)
	}

	bad, err := s.VerifyAll()
	if err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	if len(bad) != 1 || bad[0] != k.Digest() {
		t.Fatalf("VerifyAll = %v, want [%s]", bad, k.Digest())
	}
}

func TestTruncationDetectedOnRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(1)
	putBytes(t, s, k, []byte("a payload long enough to truncate"))
	p := s.payloadPath(k.Digest())
	if err := os.Truncate(p, 4); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, _, err := s.GetBytes(k); err == nil {
		t.Fatal("reading a truncated payload succeeded; want size error")
	}
}

func TestFailedPutLeavesNoEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(1)
	wantErr := errors.New("producer exploded")
	_, err = s.Put(k, func(w io.Writer) error {
		if _, werr := w.Write([]byte("partial")); werr != nil {
			return werr
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Put error = %v, want %v", err, wantErr)
	}
	if s.Has(k) {
		t.Fatal("failed Put left a visible entry")
	}
	// The staging area must not accumulate orphans.
	dirents, err := os.ReadDir(filepath.Join(s.root, stagingDir))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(dirents) != 0 {
		t.Fatalf("failed Put left %d staging files", len(dirents))
	}
}

func TestGCEvictsLRU(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	for n := 1; n <= 3; n++ {
		putBytes(t, s, testKey(n), payload)
	}
	// Age entries 1 and 2, then touch 1 by reading it: 2 becomes the
	// LRU victim.
	old := time.Now().Add(-time.Hour)
	for _, n := range []int{1, 2} {
		p := s.atimePath(testKey(n).Digest())
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatalf("Chtimes: %v", err)
		}
	}
	if _, _, err := s.GetBytes(testKey(1)); err != nil {
		t.Fatalf("GetBytes: %v", err)
	}

	stats, err := s.GC(250)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if stats.Scanned != 3 || stats.Deleted != 1 || stats.BytesFreed != 100 || stats.BytesKept != 200 {
		t.Fatalf("GC stats = %+v, want scanned 3, deleted 1, freed 100, kept 200", stats)
	}
	if s.Has(testKey(2)) {
		t.Fatal("GC kept the least-recently-used entry")
	}
	for _, n := range []int{1, 3} {
		if !s.Has(testKey(n)) {
			t.Fatalf("GC evicted recently-used entry %d", n)
		}
	}
}

func TestGCNoopUnderBudget(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	putBytes(t, s, testKey(1), []byte("small"))
	stats, err := s.GC(1 << 20)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if stats.Deleted != 0 {
		t.Fatalf("GC under budget deleted %d entries", stats.Deleted)
	}
}

func TestResolvePrefix(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(1)
	putBytes(t, s, k, []byte("x"))
	digest := k.Digest()
	got, err := s.ResolvePrefix(digest[:8])
	if err != nil {
		t.Fatalf("ResolvePrefix: %v", err)
	}
	if got != digest {
		t.Fatalf("ResolvePrefix = %s, want %s", got, digest)
	}
	if _, err := s.ResolvePrefix("ffffffffffff"); err == nil {
		t.Fatal("ResolvePrefix on absent digest succeeded")
	}
}

func TestRemove(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(1)
	putBytes(t, s, k, []byte("x"))
	if err := s.Remove(k.Digest()); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if s.Has(k) {
		t.Fatal("entry survives Remove")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + i)}, 1000)
			_, errs[i] = s.Put(testKey(i), func(w io.Writer) error {
				_, err := w.Write(payload)
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	bad, err := s.VerifyAll()
	if err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	if len(bad) != 0 {
		t.Fatalf("concurrent puts corrupted entries: %v", bad)
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != writers {
		t.Fatalf("have %d entries, want %d", len(entries), writers)
	}
}

func TestStaleLockIsBroken(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.lockTimeout = 500 * time.Millisecond
	s.lockStale = 50 * time.Millisecond
	// Simulate a crashed writer: a lock file nobody will release.
	lock := filepath.Join(s.root, lockName)
	if err := os.WriteFile(lock, []byte("pid=0\n"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
	putBytes(t, s, testKey(1), []byte("made it past the stale lock"))
}

func TestPairsRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	hmCfg := heatmap.Config{Height: 8, Width: 8, WindowInstr: 64, AddrShift: 6}
	b := workload.SpecLike(1, 1, 2000).Benchmarks[0]
	cfg := cachesim.Config{Name: "L1D", Sets: 16, Ways: 2}
	k := PairsKey(b, cfg, hmCfg, 10, 42)

	art := &PairsArtifact{
		Pairs: []heatmap.Pair{{
			Access: &heatmap.Heatmap{Name: b.Name, H: 8, W: 8, Pix: make([]float32, 64)},
			Miss:   &heatmap.Heatmap{Name: b.Name, H: 8, W: 8, Pix: make([]float32, 64)},
		}},
		HitRate: 0.75,
	}
	art.Pairs[0].Access.Pix[5] = 0.5
	if err := s.SavePairs(k, art); err != nil {
		t.Fatalf("SavePairs: %v", err)
	}
	got, err := s.LoadPairs(k)
	if err != nil {
		t.Fatalf("LoadPairs: %v", err)
	}
	if got.HitRate != art.HitRate {
		t.Fatalf("hit rate = %v, want %v", got.HitRate, art.HitRate)
	}
	if len(got.Pairs) != 1 || got.Pairs[0].Access.Pix[5] != 0.5 {
		t.Fatalf("pairs did not round-trip: %+v", got.Pairs)
	}

	// Different split seed must derive a different key.
	k2 := PairsKey(b, cfg, hmCfg, 10, 43)
	if k.Digest() == k2.Digest() {
		t.Fatal("split seed is not part of the pairs key")
	}
	if _, err := s.LoadPairs(k2); !errors.Is(err, ErrMiss) {
		t.Fatalf("LoadPairs with different split seed: err = %v, want ErrMiss", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(p, func(w io.Writer) error {
		_, err := io.WriteString(w, "content")
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(data) != "content" {
		t.Fatalf("content = %q", data)
	}
	// A failing writer must leave neither the target nor temp litter.
	p2 := filepath.Join(dir, "fail.txt")
	boom := errors.New("boom")
	if err := WriteFileAtomic(p2, func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := os.Stat(p2); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed WriteFileAtomic created the target")
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(dirents) != 1 {
		t.Fatalf("directory has %d entries, want 1 (temp litter?)", len(dirents))
	}
}
