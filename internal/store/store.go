// Package store is CacheBox's content-addressed artifact store: the
// reuse substrate that makes repeated experiment runs cheap. The
// paper's premise is that architectural simulation is too slow to
// rerun; the store extends the same economics to our own harness by
// memoising deterministic computations (ground-truth simulations,
// heatmap datasets, trained models, training checkpoints) under keys
// derived from their producing inputs.
//
// Layout under the store root:
//
//	objects/<aa>/<digest>.bin    payload bytes
//	objects/<aa>/<digest>.json   manifest (kind, inputs, size, SHA-256)
//	objects/<aa>/<digest>.atime  empty sidecar; mtime = last use (LRU)
//	tmp/                         staging area for atomic writes
//	lock                         single-writer lock file
//
// where <aa> is the first two hex digits of the entry's key digest.
// Payloads are staged in tmp/ and published with an atomic rename, so
// readers never observe partial entries and a crashed writer leaves at
// worst an orphaned temp file. Every payload's SHA-256 is embedded in
// the manifest and re-verified on read, so silent corruption surfaces
// as an error instead of a wrong figure.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cachebox/internal/metrics"
	"cachebox/internal/obs"
)

const (
	objectsDir  = "objects"
	stagingDir  = "tmp"
	lockName    = "lock"
	payloadExt  = ".bin"
	manifestExt = ".json"
	atimeExt    = ".atime"
)

// ErrMiss marks a lookup for a key with no stored entry.
var ErrMiss = errors.New("store: artifact not found")

// Manifest describes one stored entry. It is persisted as JSON next to
// the payload so entries are inspectable without the producing code.
type Manifest struct {
	// Digest is the key digest the entry is addressed by.
	Digest string `json:"digest"`
	// Kind and Format echo the key.
	Kind   string `json:"kind"`
	Format int    `json:"format"`
	// Inputs echoes the producing inputs for human inspection.
	Inputs map[string]string `json:"inputs,omitempty"`
	// Size is the payload length in bytes.
	Size int64 `json:"size"`
	// SHA256 is the payload's hex content hash, re-verified on read.
	SHA256 string `json:"sha256"`
	// CreatedAt records when the entry was published.
	CreatedAt time.Time `json:"created_at"`
}

// Store is a content-addressed artifact store rooted at a directory.
// Reads are lock-free; writes and garbage collection serialise through
// a lock file, so concurrent experiment runs sharing one store cannot
// corrupt entries.
type Store struct {
	root string
	// lockTimeout bounds how long a writer waits for the lock.
	lockTimeout time.Duration
	// lockStale is the age past which a leftover lock file (from a
	// crashed process) is broken.
	lockStale time.Duration
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, stagingDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		root:        dir,
		lockTimeout: 10 * time.Second,
		lockStale:   2 * time.Minute,
	}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) shardDir(digest string) string {
	return filepath.Join(s.root, objectsDir, digest[:2])
}

func (s *Store) payloadPath(digest string) string {
	return filepath.Join(s.shardDir(digest), digest+payloadExt)
}

func (s *Store) manifestPath(digest string) string {
	return filepath.Join(s.shardDir(digest), digest+manifestExt)
}

func (s *Store) atimePath(digest string) string {
	return filepath.Join(s.shardDir(digest), digest+atimeExt)
}

// WriteFileAtomic writes path by staging the content in a temp file in
// the same directory and renaming it into place, so a concurrent
// reader (or a crash mid-write) never observes a partial file. This is
// the helper the nonatomic-write analyzer points artifact writers at.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: stage %s: %w", path, err)
	}
	tmp := f.Name()
	cleanup := func() {
		//lint:ignore unchecked-error best-effort cleanup of a temp file after a failed write
		f.Close()
		//lint:ignore unchecked-error best-effort cleanup of a temp file after a failed write
		os.Remove(tmp)
	}
	if err := write(f); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: stage %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		//lint:ignore unchecked-error best-effort cleanup of a temp file after a failed rename
		os.Remove(tmp)
		return fmt.Errorf("store: publish %s: %w", path, err)
	}
	return nil
}

// countingWriter counts bytes on the way through.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Put stores the artifact produced by write under k, replacing any
// existing entry for the same key. The payload is staged to a temp
// file (hashed as it streams through) and published atomically under
// the writer lock together with its manifest.
//
//cbx:coldpath the store.put leaf timer measures disk latency, not an allocation-free kernel
func (s *Store) Put(k Key, write func(io.Writer) error) (*Manifest, error) {
	l := obs.StartLeaf("store.put")
	defer l.End()
	if err := k.Validate(); err != nil {
		return nil, err
	}
	digest := k.Digest()
	f, err := os.CreateTemp(filepath.Join(s.root, stagingDir), "put-*")
	if err != nil {
		return nil, fmt.Errorf("store: stage: %w", err)
	}
	tmp := f.Name()
	discard := func() {
		//lint:ignore unchecked-error best-effort cleanup of a staging file after a failed put
		f.Close()
		//lint:ignore unchecked-error best-effort cleanup of a staging file after a failed put
		os.Remove(tmp)
	}
	h := sha256.New()
	cw := &countingWriter{w: io.MultiWriter(f, h)}
	if err := write(cw); err != nil {
		discard()
		return nil, err
	}
	if err := f.Close(); err != nil {
		discard()
		return nil, fmt.Errorf("store: stage: %w", err)
	}
	inputs := make(map[string]string, len(k.Inputs))
	for name, v := range k.Inputs {
		inputs[name] = v
	}
	man := &Manifest{
		Digest:    digest,
		Kind:      k.Kind,
		Format:    k.Format,
		Inputs:    inputs,
		Size:      cw.n,
		SHA256:    hex.EncodeToString(h.Sum(nil)),
		CreatedAt: time.Now().UTC(),
	}
	err = s.withLock(func() error {
		if err := os.MkdirAll(s.shardDir(digest), 0o755); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmp, s.payloadPath(digest)); err != nil {
			return fmt.Errorf("store: publish payload: %w", err)
		}
		if err := WriteFileAtomic(s.manifestPath(digest), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(man)
		}); err != nil {
			return err
		}
		s.touchAtime(digest)
		return nil
	})
	if err != nil {
		//lint:ignore unchecked-error best-effort cleanup of a staging file after a failed publish
		os.Remove(tmp)
		return nil, err
	}
	metrics.StoreBytesWritten.Add(uint64(man.Size))
	return man, nil
}

// verifyReader re-hashes the payload as it is read and fails the final
// Read (the one returning io.EOF) if the content does not match the
// manifest — so a fully-consumed entry is always integrity-checked.
type verifyReader struct {
	f    *os.File
	h    hash.Hash
	want string
	read int64
	size int64
}

func (v *verifyReader) Read(p []byte) (int, error) {
	n, err := v.f.Read(p)
	if n > 0 {
		//lint:ignore unchecked-error hash.Hash.Write is documented to never return an error
		v.h.Write(p[:n])
		v.read += int64(n)
	}
	if err == io.EOF {
		if v.read != v.size {
			return n, fmt.Errorf("store: %s: payload is %d bytes, manifest says %d", v.f.Name(), v.read, v.size)
		}
		if got := hex.EncodeToString(v.h.Sum(nil)); got != v.want {
			return n, fmt.Errorf("store: %s: payload hash %s does not match manifest %s", v.f.Name(), got, v.want)
		}
	}
	return n, err
}

func (v *verifyReader) Close() error { return v.f.Close() }

// Get opens the entry stored under k. The returned reader verifies the
// payload's embedded hash as it is consumed; reading through to EOF
// guarantees integrity. Lookups count into the runtime store metrics.
//
//cbx:coldpath the store.get leaf timer measures disk latency, not an allocation-free kernel
func (s *Store) Get(k Key) (io.ReadCloser, *Manifest, error) {
	l := obs.StartLeaf("store.get")
	defer l.End()
	if err := k.Validate(); err != nil {
		return nil, nil, err
	}
	digest := k.Digest()
	man, err := s.manifest(digest)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			metrics.StoreMisses.Inc()
			return nil, nil, fmt.Errorf("%w: kind=%s digest=%s", ErrMiss, k.Kind, digest[:12])
		}
		return nil, nil, err
	}
	f, err := os.Open(s.payloadPath(digest))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			metrics.StoreMisses.Inc()
			return nil, nil, fmt.Errorf("%w: kind=%s digest=%s (manifest without payload)", ErrMiss, k.Kind, digest[:12])
		}
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s.touchAtime(digest)
	metrics.StoreHits.Inc()
	metrics.StoreBytesRead.Add(uint64(man.Size))
	return &verifyReader{f: f, h: sha256.New(), want: man.SHA256, size: man.Size}, man, nil
}

// GetBytes reads the entire entry into memory (verifying integrity).
func (s *Store) GetBytes(k Key) ([]byte, *Manifest, error) {
	rc, man, err := s.Get(k)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(rc)
	cerr := rc.Close()
	if err != nil {
		return nil, nil, err
	}
	if cerr != nil {
		return nil, nil, fmt.Errorf("store: %w", cerr)
	}
	return data, man, nil
}

// Has reports whether an entry exists for k (without counting a hit or
// a miss).
func (s *Store) Has(k Key) bool {
	_, err := os.Stat(s.manifestPath(k.Digest()))
	return err == nil
}

// manifest loads and decodes one manifest by digest.
func (s *Store) manifest(digest string) (*Manifest, error) {
	data, err := os.ReadFile(s.manifestPath(digest))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: manifest %s: %w", digest[:12], err)
	}
	return &man, nil
}

// touchAtime marks the entry as recently used by refreshing its atime
// sidecar's mtime. Best-effort: a failure only perturbs GC ordering.
func (s *Store) touchAtime(digest string) {
	now := time.Now()
	p := s.atimePath(digest)
	if os.Chtimes(p, now, now) == nil {
		return
	}
	//lint:ignore nonatomic-write advisory empty atime sidecar; a torn write only perturbs LRU ordering
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	//lint:ignore unchecked-error empty marker file; a close failure cannot lose artifact data
	f.Close()
}

// Entries lists every stored manifest, sorted by digest.
func (s *Store) Entries() ([]Manifest, error) {
	var out []Manifest
	err := s.walkManifests(func(man *Manifest) error {
		out = append(out, *man)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out, nil
}

// walkManifests invokes fn for every readable manifest in the store.
func (s *Store) walkManifests(fn func(*Manifest) error) error {
	shards, err := os.ReadDir(filepath.Join(s.root, objectsDir))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		dirents, err := os.ReadDir(filepath.Join(s.root, objectsDir, shard.Name()))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, de := range dirents {
			if !strings.HasSuffix(de.Name(), manifestExt) {
				continue
			}
			man, err := s.manifest(strings.TrimSuffix(de.Name(), manifestExt))
			if err != nil {
				return err
			}
			if err := fn(man); err != nil {
				return err
			}
		}
	}
	return nil
}

// ResolvePrefix expands a digest prefix to the unique full digest it
// matches, for CLI ergonomics.
func (s *Store) ResolvePrefix(prefix string) (string, error) {
	if prefix == "" {
		return "", fmt.Errorf("store: empty digest prefix")
	}
	var matches []string
	err := s.walkManifests(func(man *Manifest) error {
		if strings.HasPrefix(man.Digest, prefix) {
			matches = append(matches, man.Digest)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("store: no entry matches digest prefix %q", prefix)
	case 1:
		return matches[0], nil
	default:
		sort.Strings(matches)
		return "", fmt.Errorf("store: digest prefix %q is ambiguous (%d matches, e.g. %s, %s)",
			prefix, len(matches), matches[0][:16], matches[1][:16])
	}
}

// OpenDigest opens an entry by full digest (as listed by Entries).
func (s *Store) OpenDigest(digest string) (io.ReadCloser, *Manifest, error) {
	man, err := s.manifest(digest)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("%w: digest=%s", ErrMiss, digest)
		}
		return nil, nil, err
	}
	f, err := os.Open(s.payloadPath(digest))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	return &verifyReader{f: f, h: sha256.New(), want: man.SHA256, size: man.Size}, man, nil
}

// Remove deletes the entry with the given full digest.
func (s *Store) Remove(digest string) error {
	return s.withLock(func() error {
		return s.removeLocked(digest)
	})
}

func (s *Store) removeLocked(digest string) error {
	if err := os.Remove(s.manifestPath(digest)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Remove(s.payloadPath(digest)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Remove(s.atimePath(digest)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// VerifyAll re-hashes every payload against its manifest and returns
// the digests of corrupt or incomplete entries.
func (s *Store) VerifyAll() ([]string, error) {
	var bad []string
	err := s.walkManifests(func(man *Manifest) error {
		f, err := os.Open(s.payloadPath(man.Digest))
		if err != nil {
			bad = append(bad, man.Digest)
			return nil
		}
		h := sha256.New()
		n, err := io.Copy(h, f)
		cerr := f.Close()
		if err != nil || cerr != nil || n != man.Size || hex.EncodeToString(h.Sum(nil)) != man.SHA256 {
			bad = append(bad, man.Digest)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(bad)
	return bad, nil
}

// GCStats summarises one garbage-collection pass.
type GCStats struct {
	// Scanned is the number of entries examined.
	Scanned int
	// Deleted is the number of entries evicted.
	Deleted int
	// BytesFreed is the payload bytes released.
	BytesFreed int64
	// BytesKept is the payload bytes remaining after the pass.
	BytesKept int64
}

// gcEntry pairs a manifest with its LRU timestamp for eviction order.
type gcEntry struct {
	man      Manifest
	lastUsed time.Time
}

// GC evicts least-recently-used entries until the total payload size
// is at or below maxBytes. "Used" is the atime sidecar's mtime,
// refreshed on every Get; entries never read since creation age from
// their creation time.
func (s *Store) GC(maxBytes int64) (GCStats, error) {
	var stats GCStats
	err := s.withLock(func() error {
		var entries []gcEntry
		var total int64
		err := s.walkManifests(func(man *Manifest) error {
			last := man.CreatedAt
			if st, err := os.Stat(s.atimePath(man.Digest)); err == nil && st.ModTime().After(last) {
				last = st.ModTime()
			}
			entries = append(entries, gcEntry{man: *man, lastUsed: last})
			total += man.Size
			return nil
		})
		if err != nil {
			return err
		}
		stats.Scanned = len(entries)
		sort.Slice(entries, func(i, j int) bool {
			if !entries[i].lastUsed.Equal(entries[j].lastUsed) {
				return entries[i].lastUsed.Before(entries[j].lastUsed)
			}
			return entries[i].man.Digest < entries[j].man.Digest
		})
		for _, e := range entries {
			if total <= maxBytes {
				break
			}
			if err := s.removeLocked(e.man.Digest); err != nil {
				return err
			}
			total -= e.man.Size
			stats.Deleted++
			stats.BytesFreed += e.man.Size
		}
		stats.BytesKept = total
		return nil
	})
	if err != nil {
		return stats, err
	}
	metrics.StoreEvictions.Add(uint64(stats.Deleted))
	return stats, nil
}

// withLock runs fn holding the store's single-writer lock. The lock is
// a lock file created with O_CREATE|O_EXCL (atomic on local
// filesystems); a leftover lock older than lockStale — from a crashed
// writer — is broken and re-acquired.
func (s *Store) withLock(fn func() error) error {
	path := filepath.Join(s.root, lockName)
	deadline := time.Now().Add(s.lockTimeout)
	for {
		//lint:ignore nonatomic-write lock acquisition relies on O_CREATE|O_EXCL atomicity, not on rename
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			if _, werr := fmt.Fprintf(f, "pid=%d acquired=%s\n", os.Getpid(), time.Now().UTC().Format(time.RFC3339)); werr != nil {
				//lint:ignore unchecked-error lock content is advisory; the file's existence is the lock
				f.Close()
			} else if cerr := f.Close(); cerr != nil {
				//lint:ignore unchecked-error best-effort release after a failed close
				os.Remove(path)
				return fmt.Errorf("store: lock: %w", cerr)
			}
			break
		}
		if !errors.Is(err, fs.ErrExist) {
			return fmt.Errorf("store: lock: %w", err)
		}
		if st, serr := os.Stat(path); serr == nil && time.Since(st.ModTime()) > s.lockStale {
			// Break a stale lock from a crashed writer; the O_EXCL
			// retry below re-races cleanly with other waiters.
			//lint:ignore unchecked-error a concurrent waiter may have broken the stale lock first
			os.Remove(path)
			continue
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("store: timed out after %v waiting for writer lock %s", s.lockTimeout, path)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer func() {
		//lint:ignore unchecked-error lock release; a leftover file is broken as stale by the next writer
		os.Remove(path)
	}()
	return fn()
}
