package store

import (
	"encoding/gob"
	"io"
)

// init pins the gob type ID block for the pairs artifact; see
// internal/nn/gobwarm.go for why first-encode order must not depend on
// the runtime path. Without this, a streamed run (which saves models
// before any pairs artifact) and a materialised run (which simulates
// pairs first) would interleave the global ID allocations differently
// and write byte-different .cbgan files for identical weights.
func init() {
	enc := gob.NewEncoder(io.Discard)
	//lint:ignore unchecked-error warming the global gob type registry; encoding a zero value of a concrete wire type cannot fail
	enc.Encode(PairsArtifact{})
}
