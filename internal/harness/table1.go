package harness

import (
	"cachebox/internal/baseline"
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/par"
	"cachebox/internal/workload"
	"context"
	"sort"
)

// Table1Row is one benchmark group's comparison: the baselines' mean
// absolute percentage difference in L1 miss rate over the group's
// phases, and CBox's best/worst/average phase.
type Table1Row struct {
	Group     string
	Baselines map[string]float64
	CBoxBest  float64
	CBoxWorst float64
	CBoxAvg   float64
}

// Table1Result mirrors the paper's Table 1.
type Table1Result struct {
	Rows []Table1Row
	// Avg holds each method's column average, keyed by method name
	// ("tab-base", "tab-rd", "tab-ic", "hrd", "stm", "cbox-best",
	// "cbox-worst", "cbox-avg").
	Avg map[string]float64
}

// Table1 compares the statistical predictors against CBox on L1 miss
// rate, over multi-phase benchmark groups held out from training.
func (r *Runner) Table1() (*Table1Result, error) {
	_, tabSpan := obs.Start(context.Background(), "harness.table1")
	defer tabSpan.End()
	p := r.Profile
	phases := p.SpecPhases
	if phases < 2 {
		phases = 3 // the comparison needs best/worst/avg across phases
	}
	suite := workload.SpecLike(p.SpecGroups, phases, p.Ops)
	// Same groups and split seed as the RQ2 model's training suite, so
	// every test group is unseen regardless of phase count.
	trainSingle, _ := r.split(r.specSuite().Benchmarks)
	m, err := r.rq2Model(trainSingle)
	if err != nil {
		return nil, err
	}
	_, test := r.split(suite.Benchmarks)
	byGroup := map[string][]workload.Benchmark{}
	var groups []string
	for _, b := range test {
		if _, ok := byGroup[b.Group]; !ok {
			groups = append(groups, b.Group)
		}
		byGroup[b.Group] = append(byGroup[b.Group], b)
	}
	sort.Strings(groups)
	if len(groups) > 5 {
		groups = groups[:5] // the paper compares five applications
	}
	cfg := L1Default
	preds := []baseline.Predictor{
		&baseline.Tabular{Variant: baseline.TabBase, Seed: 31},
		&baseline.Tabular{Variant: baseline.TabRD, Seed: 31},
		&baseline.Tabular{Variant: baseline.TabIC, Seed: 31},
		&baseline.HRD{},
		&baseline.STM{Seed: 31},
	}
	res := &Table1Result{Avg: map[string]float64{}}
	colSums := map[string][]float64{}
	for _, g := range groups {
		row := Table1Row{Group: g, Baselines: map[string]float64{}, CBoxBest: 101, CBoxWorst: -1}
		var cboxDiffs []float64
		baseDiffs := map[string][]float64{}
		gb := byGroup[g]
		// Parallel stage: trace synthesis, true miss-rate simulation and
		// heatmap ground truth per benchmark. The statistical predictors
		// carry internal state across calls, so they stay in the serial
		// commit loop below, consuming the results in benchmark order.
		traces, err := workload.Traces(context.Background(), r.workers(), gb)
		if err != nil {
			return nil, err
		}
		trueMisses, err := par.Map(context.Background(), r.workers(), gb,
			func(_ context.Context, i int, b workload.Benchmark) (float64, error) {
				metrics.SimRuns.Inc()
				return cachesim.RunTrace(cachesim.New(cfg), traces[i]).Stats.MissRate(), nil
			})
		if err != nil {
			return nil, err
		}
		truths := r.truths(gb, cfg)
		for i, b := range gb {
			for _, pr := range preds {
				d := metrics.AbsPctDiff(trueMisses[i], pr.PredictMissRate(traces[i], cfg))
				baseDiffs[pr.Name()] = append(baseDiffs[pr.Name()], d)
			}
			trueHR, predHR, evErr := 0.0, 0.0, truths[i].err
			if evErr == nil {
				trueHR, predHR, evErr = r.evaluatePairs(m, b.Name, truths[i].pairs, core.CacheParams(cfg), 8)
			}
			if evErr != nil {
				continue
			}
			// Hit-rate and miss-rate absolute differences coincide.
			cboxDiffs = append(cboxDiffs, metrics.AbsPctDiff(trueHR, predHR))
		}
		if len(cboxDiffs) == 0 {
			continue
		}
		for name, ds := range baseDiffs {
			row.Baselines[name] = metrics.Mean(ds)
			colSums[name] = append(colSums[name], row.Baselines[name])
		}
		for _, d := range cboxDiffs {
			if d < row.CBoxBest {
				row.CBoxBest = d
			}
			if d > row.CBoxWorst {
				row.CBoxWorst = d
			}
		}
		row.CBoxAvg = metrics.Mean(cboxDiffs)
		colSums["cbox-best"] = append(colSums["cbox-best"], row.CBoxBest)
		colSums["cbox-worst"] = append(colSums["cbox-worst"], row.CBoxWorst)
		colSums["cbox-avg"] = append(colSums["cbox-avg"], row.CBoxAvg)
		res.Rows = append(res.Rows, row)
	}
	for name, vals := range colSums {
		res.Avg[name] = metrics.Mean(vals)
	}
	r.logf("\nTable 1: absolute percentage difference of L1 miss-rate prediction\n")
	r.logf("%-22s %8s %8s %8s %8s %8s | %8s %8s %8s\n",
		"group", "tab-base", "tab-rd", "tab-ic", "hrd", "stm", "cb-best", "cb-worst", "cb-avg")
	for _, row := range res.Rows {
		r.logf("%-22s %8.2f %8.2f %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
			row.Group, row.Baselines["tab-base"], row.Baselines["tab-rd"], row.Baselines["tab-ic"],
			row.Baselines["hrd"], row.Baselines["stm"], row.CBoxBest, row.CBoxWorst, row.CBoxAvg)
	}
	r.logf("%-22s %8.2f %8.2f %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n", "avg % diff",
		res.Avg["tab-base"], res.Avg["tab-rd"], res.Avg["tab-ic"], res.Avg["hrd"], res.Avg["stm"],
		res.Avg["cbox-best"], res.Avg["cbox-worst"], res.Avg["cbox-avg"])
	return res, nil
}
