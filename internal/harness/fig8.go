package harness

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/workload"
	"context"
)

// absPct is the paper's metric: |true − pred| in percentage points.
func absPct(trueHR, predHR float64) float64 { return metrics.AbsPctDiff(trueHR, predHR) }

// rq2Model trains (or loads) the single model conditioned on four L1
// cache configurations — shared by Figures 8, 9, 11 and 12.
func (r *Runner) rq2Model(train []workload.Benchmark) (*core.Model, error) {
	return r.trainOrLoad("rq2-multiconfig", func() (*core.Model, error) {
		ds, err := r.dataset(train, RQ2Configs, levelThresholds[0])
		if err != nil {
			return nil, err
		}
		model, err := core.NewModel(r.Profile.Model)
		if err != nil {
			return nil, err
		}
		r.logf("[rq2] training on %d samples (%d benches x %d configs)\n", len(ds), len(train), len(RQ2Configs))
		if _, err := model.Train(ds, r.trainConfig("rq2-multiconfig", r.Profile.Epochs, 2)); err != nil {
			return nil, err
		}
		return model, nil
	})
}

// ConfigResult is one cache configuration's evaluation.
type ConfigResult struct {
	Config  cachesim.Config
	Rows    []BenchRow
	Average float64
}

// Fig8Result is the RQ2 outcome: one conditioned model evaluated on
// all four training configurations (paper averages 2.79/2.06/2.59/
// 2.46%).
type Fig8Result struct {
	Configs []ConfigResult
}

// Fig8 runs RQ2.
func (r *Runner) Fig8() (*Fig8Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig8")
	defer figSpan.End()
	train, test := r.split(r.specSuite().Benchmarks)
	m, err := r.rq2Model(train)
	if err != nil {
		return nil, err
	}
	return r.evalConfigs(m, test, RQ2Configs, "Figure 8 (RQ2): one model, four L1 configurations")
}

// Fig9 runs RQ3: the RQ2 model on configurations absent from training
// (paper averages 1.96/1.26/3.28%).
func (r *Runner) Fig9() (*Fig8Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig9")
	defer figSpan.End()
	train, test := r.split(r.specSuite().Benchmarks)
	m, err := r.rq2Model(train)
	if err != nil {
		return nil, err
	}
	return r.evalConfigs(m, test, RQ3Configs, "Figure 9 (RQ3): unseen cache configurations")
}

func (r *Runner) evalConfigs(m *core.Model, test []workload.Benchmark, cfgs []cachesim.Config, title string) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, cfg := range cfgs {
		cr := ConfigResult{Config: cfg}
		truths := r.truths(test, cfg)
		params := core.CacheParams(cfg)
		for i, b := range test {
			trueHR, predHR, err := 0.0, 0.0, truths[i].err
			if err == nil {
				trueHR, predHR, err = r.evaluatePairs(m, b.Name, truths[i].pairs, params, 8)
			}
			if err != nil {
				r.logf("[%s] %s skipped: %v\n", cfg, b.Name, err)
				continue
			}
			row := BenchRow{Bench: b.Name, TrueHit: trueHR, PredHit: predHR, AbsDiff: absPct(trueHR, predHR)}
			if trueHR < levelThresholds[0] {
				row.Excluded = true
			}
			cr.Rows = append(cr.Rows, row)
		}
		sortRows(cr.Rows)
		cr.Average = r.renderRows(title+" — "+cr.Config.String(), cr.Rows)
		res.Configs = append(res.Configs, cr)
	}
	return res, nil
}

// Fig12Result is the RQ6 scatter: every (benchmark, config) true vs
// predicted hit-rate point (paper Figure 12).
type Fig12Result struct {
	Points []BenchRow
	// BiasIntermediate is the mean signed (pred − true) for points
	// with true hit rate in [0.70, 0.90): the paper reports a positive
	// correlation bias in this band.
	BiasIntermediate float64
	// BiasHigh is the same for true hit rate >= 0.90.
	BiasHigh float64
}

// Fig12 runs RQ6 using the RQ2 model across its four configurations,
// without the data-regime exclusion (the scatter shows everything).
func (r *Runner) Fig12() (*Fig12Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig12")
	defer figSpan.End()
	train, test := r.split(r.specSuite().Benchmarks)
	m, err := r.rq2Model(train)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{}
	var nInt, nHigh int
	for _, cfg := range RQ2Configs {
		truths := r.truths(test, cfg)
		params := core.CacheParams(cfg)
		for i, b := range test {
			if truths[i].err != nil {
				continue
			}
			trueHR, predHR, err := r.evaluatePairs(m, b.Name, truths[i].pairs, params, 8)
			if err != nil {
				continue
			}
			res.Points = append(res.Points, BenchRow{
				Bench: b.Name + "@" + cfg.String(), TrueHit: trueHR, PredHit: predHR,
				AbsDiff: absPct(trueHR, predHR),
			})
			signed := predHR - trueHR
			switch {
			case trueHR >= 0.70 && trueHR < 0.90:
				res.BiasIntermediate += signed
				nInt++
			case trueHR >= 0.90:
				res.BiasHigh += signed
				nHigh++
			}
		}
	}
	if nInt > 0 {
		res.BiasIntermediate /= float64(nInt)
	}
	if nHigh > 0 {
		res.BiasHigh /= float64(nHigh)
	}
	r.logf("\nFigure 12 (RQ6): true vs predicted hit rates (%d points)\n", len(res.Points))
	r.logf("%-44s %9s %9s %9s\n", "benchmark@config", "true", "pred", "pred-true")
	for _, p := range res.Points {
		r.logf("%-44s %9.4f %9.4f %+9.4f\n", p.Bench, p.TrueHit, p.PredHit, p.PredHit-p.TrueHit)
	}
	r.logf("mean signed bias: intermediate (70-90%%) = %+.4f over %d, high (>=90%%) = %+.4f over %d\n",
		res.BiasIntermediate, nInt, res.BiasHigh, nHigh)
	return res, nil
}
