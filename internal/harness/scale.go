// Package harness reproduces every table and figure of the paper's
// evaluation: one runner per experiment (Figures 3, 7–14 and Table 1),
// sharing trained models through an artifact cache so related
// experiments (RQ2/RQ3/RQ5/RQ6 all use the four-configuration model)
// train once.
package harness

import (
	"fmt"

	"cachebox/internal/core"
	"cachebox/internal/heatmap"
)

// Scale selects how much compute the experiments spend. The shapes of
// the results (who wins, where crossovers fall) hold at every scale;
// absolute accuracy improves with scale.
type Scale int

const (
	// Tiny finishes in tens of seconds; used by the test suite and CI.
	Tiny Scale = iota
	// Small is the default: minutes per experiment on one CPU core.
	Small
	// Full mirrors the paper's 512×512 geometry and network width;
	// it needs hours and real hardware, and exists so the paper's
	// exact configuration is expressible.
	Full
)

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("harness: unknown scale %q (tiny|small|full)", s)
	}
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Full:
		return "full"
	default:
		return "unknown"
	}
}

// Profile bundles every scale-dependent knob.
type Profile struct {
	// Heatmap geometry.
	Heatmap heatmap.Config
	// Model architecture template (per-experiment runners adjust
	// conditioning etc.).
	Model core.Config
	// Ops is the per-benchmark access budget.
	Ops int
	// SpecGroups / SpecPhases size the spec-like suite; SuiteScale
	// sizes ligra-like and poly-like problem sizes.
	SpecGroups, SpecPhases int
	SuiteScale             float64
	// MaxPairs caps heatmap pairs per benchmark per config.
	MaxPairs int
	// Epochs / EpochsAux are the training budgets for headline models
	// and auxiliary (per-level, prefetcher) models.
	Epochs, EpochsAux int
	// BatchSize is the training batch size.
	BatchSize int
}

// ProfileFor returns the knob settings of a scale.
func ProfileFor(s Scale) Profile {
	switch s {
	case Tiny:
		hm := heatmap.DefaultConfig()
		hm.Height, hm.Width = 16, 16
		hm.WindowInstr = 150
		mc := core.DefaultConfig()
		mc.ImageSize = 16
		mc.NGF, mc.NDF = 4, 4
		mc.PixelCap, mc.MissPixelCap = 96, 24
		return Profile{
			Heatmap: hm, Model: mc,
			Ops: 20000, SpecGroups: 5, SpecPhases: 2, SuiteScale: 0.15,
			MaxPairs: 6, Epochs: 3, EpochsAux: 2, BatchSize: 4,
		}
	case Full:
		return Profile{
			Heatmap: heatmap.PaperConfig(), Model: core.PaperConfig(),
			Ops: 5_000_000, SpecGroups: 90, SpecPhases: 2, SuiteScale: 1.0,
			MaxPairs: 200, Epochs: 200, EpochsAux: 100, BatchSize: 8,
		}
	default: // Small
		return Profile{
			Heatmap: heatmap.DefaultConfig(), Model: core.DefaultConfig(),
			Ops: 120000, SpecGroups: 20, SpecPhases: 1, SuiteScale: 0.25,
			MaxPairs: 14, Epochs: 35, EpochsAux: 18, BatchSize: 8,
		}
	}
}
