package harness

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/par"
	"cachebox/internal/workload"
	"context"
	"fmt"
)

// AblationPoint is one setting's accuracy.
type AblationPoint struct {
	Label   string
	Average float64 // mean abs %-diff over evaluated benchmarks
	Samples int
}

// AblationResult sweeps one design choice.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// Ablations validates the design choices DESIGN.md §4 calls out by
// sweeping them at a reduced scale: the heatmap overlap fraction
// (paper: 30% best) and the L1 loss weight λ (paper: 150). Each point
// trains a small model from scratch, so the sweep uses the tiny
// profile geometry regardless of the runner's scale.
func (r *Runner) Ablations() ([]AblationResult, error) {
	_, abSpan := obs.Start(context.Background(), "harness.ablation")
	defer abSpan.End()
	prof := ProfileFor(Tiny)
	prof.Epochs = 6
	prof.Ops = 40000
	suite := workload.SpecLike(8, 1, prof.Ops)
	train, test := workload.Split(suite.Benchmarks, 0.8, r.SplitSeed)
	cfg := L1Default

	// The tiny test split is a handful of benchmarks; the sweep keeps
	// them all (no data-regime threshold) so every point evaluates the
	// same population.
	evalWith := func(hm heatmap.Config, mc core.Config) (float64, int, error) {
		// simulate runs one benchmark's sim and builds capped pairs
		// under the point's heatmap geometry — the pooled stage of both
		// the build and eval loops below.
		simulate := func(b workload.Benchmark) ([]heatmap.Pair, error) {
			metrics.SimRuns.Inc()
			lt := cachesim.RunTrace(cachesim.New(cfg), b.Trace())
			pairs, err := heatmap.BuildPair(hm, lt.Accesses, lt.Misses)
			if err != nil {
				return nil, err
			}
			if len(pairs) > prof.MaxPairs {
				pairs = pairs[:prof.MaxPairs]
			}
			return pairs, nil
		}
		build := func(benches []workload.Benchmark) ([]core.Sample, error) {
			built, err := par.Map(context.Background(), r.workers(), benches,
				func(_ context.Context, _ int, b workload.Benchmark) ([]heatmap.Pair, error) {
					return simulate(b)
				})
			if err != nil {
				return nil, err
			}
			var out []core.Sample
			for i, b := range benches {
				for _, pr := range built[i] {
					out = append(out, core.Sample{Access: pr.Access, Miss: pr.Miss,
						Params: core.CacheParams(cfg), Bench: b.Name})
				}
			}
			return out, nil
		}
		ds, err := build(train)
		if err != nil || len(ds) == 0 {
			return 0, 0, err
		}
		m, err := core.NewModel(mc)
		if err != nil {
			return 0, 0, err
		}
		if _, err := m.Train(ds, core.TrainConfig{Epochs: prof.Epochs, BatchSize: prof.BatchSize, Seed: 9}); err != nil {
			return 0, 0, err
		}
		var diffs []float64
		type abTruth struct {
			pairs []heatmap.Pair
			err   error
		}
		testTruths, terr := par.Map(context.Background(), r.workers(), test,
			func(_ context.Context, _ int, b workload.Benchmark) (abTruth, error) {
				pairs, perr := simulate(b)
				return abTruth{pairs: pairs, err: perr}, nil
			})
		if terr != nil {
			return 0, 0, terr
		}
		for i := range test {
			pairs := testTruths[i].pairs
			if testTruths[i].err != nil || len(pairs) == 0 {
				continue
			}
			var access, miss []*heatmap.Heatmap
			for _, pr := range pairs {
				access = append(access, pr.Access)
				miss = append(miss, pr.Miss)
			}
			trueHR, err := heatmap.HitRate(hm, access, miss)
			if err != nil {
				continue
			}
			pred := m.Predict(access, core.CacheParams(cfg), 8)
			for i := range pred {
				pred[i] = heatmap.ConstrainMiss(pred[i], access[i])
			}
			predHR, err := heatmap.HitRate(hm, access, pred)
			if err != nil {
				continue
			}
			diffs = append(diffs, metrics.AbsPctDiff(trueHR, predHR))
		}
		if len(diffs) == 0 {
			return 0, 0, fmt.Errorf("harness: ablation evaluated no benchmarks")
		}
		return metrics.Mean(diffs), len(diffs), nil
	}

	var results []AblationResult

	// 1. Overlap fraction sweep (paper fixes 30%).
	overlap := AblationResult{Name: "heatmap overlap fraction"}
	for _, ov := range []float64{0, 0.15, 0.30, 0.50} {
		hm := prof.Heatmap
		hm.Overlap = ov
		avg, n, err := evalWith(hm, prof.Model)
		if err != nil {
			return nil, err
		}
		overlap.Points = append(overlap.Points, AblationPoint{
			Label: formatPct(ov), Average: avg, Samples: n,
		})
	}
	results = append(results, overlap)

	// 2. λ sweep (paper uses 150).
	lambda := AblationResult{Name: "L1 loss weight lambda"}
	for _, l := range []float64{0, 50, 150, 300} {
		mc := prof.Model
		mc.Lambda = l
		avg, n, err := evalWith(prof.Heatmap, mc)
		if err != nil {
			return nil, err
		}
		lambda.Points = append(lambda.Points, AblationPoint{
			Label: formatFloat(l), Average: avg, Samples: n,
		})
	}
	results = append(results, lambda)

	for _, res := range results {
		r.logf("\nAblation: %s\n", res.Name)
		for _, p := range res.Points {
			r.logf("  %-8s avg abs %%-diff = %6.2f%% over %d benchmarks\n", p.Label, p.Average, p.Samples)
		}
	}
	return results, nil
}

func formatPct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }
