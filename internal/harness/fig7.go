package harness

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/obs"
	"cachebox/internal/workload"
	"context"
)

// Fig7Result is the RQ1 outcome: per-benchmark true/predicted hit
// rates for a model trained on all three suites, tested on unseen
// benchmarks (paper Figure 7; target average ≈ 3.05%).
type Fig7Result struct {
	Rows    []BenchRow
	Average float64
}

// Fig7 trains the mixed-suite model on a 64set-12way L1 and evaluates
// every held-out benchmark above the L1 data-regime threshold.
func (r *Runner) Fig7() (*Fig7Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig7")
	defer figSpan.End()
	var all []workload.Benchmark
	for _, s := range r.suites() {
		all = append(all, s.Benchmarks...)
	}
	train, test := r.split(all)
	cfg := L1Default
	m, err := r.trainOrLoad("fig7-rq1-mixed", func() (*core.Model, error) {
		// The dataset arrives as a SampleSource: in-memory samples on
		// the default path, a sharded streaming dataset under
		// Runner.Stream. TrainSource is byte-for-byte Train, so the
		// model artifact is identical either way.
		src, err := r.datasetSource("fig7-rq1-mixed", train, []cachesim.Config{cfg}, levelThresholds[0])
		if err != nil {
			return nil, err
		}
		mc := r.Profile.Model
		model, err := core.NewModel(mc)
		if err != nil {
			return nil, err
		}
		r.logf("[fig7] training on %d samples from %d benchmarks\n", src.Len(), len(train))
		if _, err := model.TrainSource(src, r.trainConfig("fig7-rq1-mixed", r.Profile.Epochs, 1)); err != nil {
			return nil, err
		}
		return model, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	// Ground-truth simulation fans out across the worker pool;
	// prediction and row commit stay serial in benchmark order.
	truths := r.truths(test, cfg)
	for i, b := range test {
		trueHR, predHR, err := 0.0, 0.0, truths[i].err
		if err == nil {
			trueHR, predHR, err = r.evaluatePairs(m, b.Name, truths[i].pairs, core.CacheParams(cfg), 8)
		}
		if err != nil {
			r.logf("[fig7] %s skipped: %v\n", b.Name, err)
			continue
		}
		row := BenchRow{Bench: b.Name, TrueHit: trueHR, PredHit: predHR, AbsDiff: absPct(trueHR, predHR)}
		if trueHR < levelThresholds[0] {
			row.Excluded = true
		}
		res.Rows = append(res.Rows, row)
	}
	sortRows(res.Rows)
	res.Average = r.renderRows("Figure 7 (RQ1): unseen benchmarks across suites, L1 64set-12way", res.Rows)
	return res, nil
}
