package harness

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/par"
	"cachebox/internal/workload"
	"context"
	"strings"
)

// Fig14Result is the dataset analysis of §6.1: the histogram of true
// hit rates across the spec-like suite on the default L1 (paper
// Figure 14: over 95% of SPEC benchmarks exceed a 65% hit rate), plus
// the per-level fractions the paper quotes for L2 and L3.
type Fig14Result struct {
	Bins          []metrics.HistBin
	FracAbove65L1 float64
	FracAbove40L2 float64
	FracAbove35L3 float64
	Benchmarks    int
}

// Fig14 simulates every benchmark on the L1/L2/L3 hierarchy and
// histograms the hit rates.
func (r *Runner) Fig14() (*Fig14Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig14")
	defer figSpan.End()
	benches := r.specSuite().Benchmarks
	// Per-benchmark hierarchy sims fan out across the worker pool; the
	// rate slices are assembled in benchmark order below.
	rates, err := par.Map(context.Background(), r.workers(), benches,
		func(_ context.Context, _ int, b workload.Benchmark) ([]float64, error) {
			h, err := cachesim.NewHierarchy(HierarchyConfigs...)
			if err != nil {
				return nil, err
			}
			metrics.SimRuns.Inc()
			lts := cachesim.RunHierarchy(h, b.Trace())
			rs := make([]float64, len(lts))
			for i, lt := range lts {
				rs[i] = lt.HitRate()
			}
			return rs, nil
		})
	if err != nil {
		return nil, err
	}
	var l1, l2, l3 []float64
	for _, rs := range rates {
		l1 = append(l1, rs[0])
		l2 = append(l2, rs[1])
		l3 = append(l3, rs[2])
	}
	res := &Fig14Result{
		Bins:          metrics.RateHistogram(l1, 20),
		FracAbove65L1: metrics.FractionAbove(l1, 0.65),
		FracAbove40L2: metrics.FractionAbove(l2, 0.40),
		FracAbove35L3: metrics.FractionAbove(l3, 0.35),
		Benchmarks:    len(benches),
	}
	r.logf("\nFigure 14: histogram of true L1 (64set-12way) hit rates over %d spec-like benchmarks\n", len(benches))
	for _, bin := range res.Bins {
		r.logf("[%4.2f,%4.2f) %3d %s\n", bin.Lo, bin.Hi, bin.Count, strings.Repeat("#", bin.Count))
	}
	r.logf("fraction above 65%% on L1: %.1f%% (paper: >95%% of SPEC)\n", res.FracAbove65L1*100)
	r.logf("fraction above 40%% on L2: %.1f%% (paper: 70%%)\n", res.FracAbove40L2*100)
	r.logf("fraction above 35%% on L3: %.1f%% (paper: 55%%)\n", res.FracAbove35L3*100)
	return res, nil
}
