package harness

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/par"
	"cachebox/internal/workload"
	"context"
	"fmt"
)

// Fig10Result is the RQ4 outcome: per-level accuracy of a combined
// L1+L2+L3 model (trained without cache parameters) versus standalone
// per-level models (paper Figure 10: combined 3.23/17.63/14.06%,
// standalone 3.70/11.40/15.89%).
type Fig10Result struct {
	// Combined[i] and Standalone[i] are level i's evaluations.
	Combined, Standalone []ConfigResult
}

// hierTruth is one benchmark's full-hierarchy simulation: per-level
// hit rates and capped heatmap pairs, plus per-level pair-building
// errors. RunHierarchy resets the hierarchy before replaying, so each
// pool task building its own hierarchy is identical to the old shared
// serial one.
type hierTruth struct {
	rates []float64
	pairs [][]heatmap.Pair
	errs  []error
	err   error // hierarchy construction failure
}

// hierTruths simulates benches over the L1/L2/L3 hierarchy on the
// worker pool, in input order.
func (r *Runner) hierTruths(benches []workload.Benchmark) []hierTruth {
	out, err := par.Map(context.Background(), r.workers(), benches,
		func(_ context.Context, _ int, b workload.Benchmark) (hierTruth, error) {
			h, herr := cachesim.NewHierarchy(HierarchyConfigs...)
			if herr != nil {
				return hierTruth{err: herr}, nil
			}
			metrics.SimRuns.Inc()
			lts := cachesim.RunHierarchy(h, b.Trace())
			ht := hierTruth{
				rates: make([]float64, len(lts)),
				pairs: make([][]heatmap.Pair, len(lts)),
				errs:  make([]error, len(lts)),
			}
			for i, lt := range lts {
				ht.rates[i] = lt.HitRate()
				pairs, perr := heatmap.BuildPair(r.Profile.Heatmap, lt.Accesses, lt.Misses)
				if perr != nil {
					ht.errs[i] = perr
					continue
				}
				if r.Profile.MaxPairs > 0 && len(pairs) > r.Profile.MaxPairs {
					pairs = pairs[:r.Profile.MaxPairs]
				}
				ht.pairs[i] = pairs
			}
			return ht, nil
		})
	if err != nil {
		// Only a panicking task can get here; surface it on every row.
		out = make([]hierTruth, len(benches))
		for i := range out {
			out[i] = hierTruth{err: err}
		}
	}
	return out
}

// levelSamples builds per-level training samples by running the full
// hierarchy, applying the paper's per-level data-regime thresholds.
// Level i's access stream is level i-1's miss stream.
func (r *Runner) levelSamples(benches []workload.Benchmark, withParams bool) ([][]core.Sample, error) {
	out := make([][]core.Sample, len(HierarchyConfigs))
	for bi, ht := range r.hierTruths(benches) {
		if ht.err != nil {
			return nil, ht.err
		}
		for i := range ht.rates {
			if ht.rates[i] < levelThresholds[i] {
				continue
			}
			if ht.errs[i] != nil {
				return nil, ht.errs[i]
			}
			var params []float32
			if withParams {
				params = core.CacheParams(HierarchyConfigs[i])
			}
			for _, pr := range ht.pairs[i] {
				out[i] = append(out[i], core.Sample{Access: pr.Access, Miss: pr.Miss, Params: params, Bench: benches[bi].Name})
			}
		}
	}
	return out, nil
}

// evalLevel evaluates a model on one hierarchy level of one
// benchmark's simulated truth.
func (r *Runner) evalLevel(m *core.Model, b workload.Benchmark, ht hierTruth, level int) (trueHR, predHR float64, err error) {
	if ht.err != nil {
		return 0, 0, ht.err
	}
	if ht.errs[level] != nil {
		return 0, 0, ht.errs[level]
	}
	if len(ht.pairs[level]) == 0 {
		return 0, 0, fmt.Errorf("harness: %s L%d stream too short for heatmaps", b.Name, level+1)
	}
	var params []float32
	if m.Cfg.CondDim > 0 {
		params = core.CacheParams(HierarchyConfigs[level])
	}
	return r.evaluatePairs(m, b.Name, ht.pairs[level], params, 8)
}

// Fig10 runs RQ4: the combined model (no cache parameters) and three
// standalone per-level models over the L1/L2/L3 hierarchy.
func (r *Runner) Fig10() (*Fig10Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig10")
	defer figSpan.End()
	train, test := r.split(r.specSuite().Benchmarks)

	// Combined model: all levels, CondDim = 0 (paper: "trained without
	// any cache parameters, specifically to evaluate CB-GAN's ability
	// to generalize without explicit architectural context").
	combined, err := r.trainOrLoad("fig10-combined", func() (*core.Model, error) {
		levels, err := r.levelSamples(train, false)
		if err != nil {
			return nil, err
		}
		var ds []core.Sample
		for _, ls := range levels {
			ds = append(ds, ls...)
		}
		if len(ds) == 0 {
			return nil, fmt.Errorf("harness: no hierarchy samples")
		}
		mc := r.Profile.Model
		mc.CondDim = 0
		model, err := core.NewModel(mc)
		if err != nil {
			return nil, err
		}
		r.logf("[fig10] combined model: %d samples across %d levels\n", len(ds), len(levels))
		if _, err := model.Train(ds, r.trainConfig("fig10-combined", r.Profile.EpochsAux, 4)); err != nil {
			return nil, err
		}
		return model, nil
	})
	if err != nil {
		return nil, err
	}

	// Standalone per-level models (explicit cache parameters, as in
	// the paper).
	standalone := make([]*core.Model, len(HierarchyConfigs))
	allLevels, err := r.levelSamples(train, true)
	if err != nil {
		return nil, err
	}
	for i := range HierarchyConfigs {
		i := i
		if len(allLevels[i]) == 0 {
			r.logf("[fig10] no in-regime L%d samples at this scale; skipping standalone model\n", i+1)
			continue
		}
		standalone[i], err = r.trainOrLoad(fmt.Sprintf("fig10-standalone-l%d", i+1), func() (*core.Model, error) {
			levels := allLevels
			model, err := core.NewModel(r.Profile.Model)
			if err != nil {
				return nil, err
			}
			r.logf("[fig10] standalone L%d model: %d samples\n", i+1, len(levels[i]))
			if _, err := model.Train(levels[i], r.trainConfig(fmt.Sprintf("fig10-standalone-l%d", i+1), r.Profile.EpochsAux, int64(5+i))); err != nil {
				return nil, err
			}
			return model, nil
		})
		if err != nil {
			return nil, err
		}
	}

	res := &Fig10Result{}
	markers := []string{"+", "*", "ø"} // the paper's exclusion markers per level
	// One pooled hierarchy simulation per test benchmark, shared by
	// every (level, variant) evaluation below.
	testTruths := r.hierTruths(test)
	for i, cfg := range HierarchyConfigs {
		variants := []struct {
			name  string
			model *core.Model
		}{{"combined", combined}, {"standalone", standalone[i]}}
		for _, v := range variants {
			variant, m := v.name, v.model
			if m == nil {
				r.logf("[fig10] %s model unavailable for L%d; skipped\n", variant, i+1)
				continue
			}
			cr := ConfigResult{Config: cfg}
			for bi, b := range test {
				trueHR, predHR, err := r.evalLevel(m, b, testTruths[bi], i)
				if err != nil {
					continue
				}
				name := b.Name
				row := BenchRow{Bench: name, TrueHit: trueHR, PredHit: predHR, AbsDiff: absPct(trueHR, predHR)}
				if trueHR < levelThresholds[i] {
					row.Excluded = true
					row.Bench = name + " " + markers[i]
				}
				cr.Rows = append(cr.Rows, row)
			}
			sortRows(cr.Rows)
			title := fmt.Sprintf("Figure 10 (RQ4): %s model, L%d %s", variant, i+1, cfg)
			cr.Average = r.renderRows(title, cr.Rows)
			if variant == "combined" {
				res.Combined = append(res.Combined, cr)
			} else {
				res.Standalone = append(res.Standalone, cr)
			}
		}
	}
	return res, nil
}
