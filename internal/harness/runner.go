package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/par"
	"cachebox/internal/store"
	"cachebox/internal/stream"
	"cachebox/internal/workload"
)

// Hit-rate thresholds of the paper's §6.1 "high data regime" rule, per
// hierarchy level.
var levelThresholds = []float64{0.65, 0.40, 0.35}

// The paper's cache configurations.
var (
	// L1Default is the 64set-12way L1D used by RQ1/RQ4–RQ7.
	L1Default = cachesim.Config{Sets: 64, Ways: 12}
	// RQ2Configs are the four L1 configurations one model is trained
	// on (Figure 8).
	RQ2Configs = []cachesim.Config{
		{Sets: 64, Ways: 12},
		{Sets: 128, Ways: 12},
		{Sets: 128, Ways: 6},
		{Sets: 128, Ways: 3},
	}
	// RQ3Configs are the three configurations unseen in training
	// (Figure 9).
	RQ3Configs = []cachesim.Config{
		{Sets: 256, Ways: 6},
		{Sets: 256, Ways: 12},
		{Sets: 32, Ways: 12},
	}
	// HierarchyConfigs are the L1/L2/L3 setup of Figure 10.
	HierarchyConfigs = []cachesim.Config{
		{Sets: 64, Ways: 12},
		{Sets: 1024, Ways: 8},
		{Sets: 2048, Ways: 16},
	}
)

// Runner executes experiments, caching trained models under
// ArtifactsDir.
type Runner struct {
	Scale        Scale
	Profile      Profile
	ArtifactsDir string
	Out          io.Writer
	// SplitSeed fixes the train/test split. It is part of every store
	// key, so runs with different splits never share cached artifacts.
	SplitSeed int64
	// Store, when non-nil, memoises ground-truth simulation results
	// and trained models: a rerun of the same figure against a warm
	// store performs zero simulator invocations.
	Store *store.Store
	// CheckpointEvery, when positive, makes trained models write a
	// resumable checkpoint every N epochs next to the model artifact.
	CheckpointEvery int
	// Resume restores training from an existing checkpoint file when
	// one is present.
	Resume bool
	// Workers bounds the parallelism of ground-truth simulation and
	// trace synthesis: 0 means runtime.GOMAXPROCS(0), 1 forces the old
	// serial path. Whatever the value, results are committed in
	// deterministic index order, so every artifact is byte-identical to
	// a serial run. Model prediction always stays serial — the
	// generator's forward pass is not safe for concurrent use on one
	// model.
	Workers int
	// Train is the base TrainConfig applied to every model the harness
	// trains (the cbx-experiments -config file). BatchSize, when set,
	// overrides the profile's; the Parallel section enables
	// deterministic data-parallel sharding. Epochs and Seed stay
	// experiment-controlled (each figure fixes its own for
	// reproducibility), and the dataset/checkpoint sections are managed
	// by the runner itself.
	Train core.TrainConfig
	// Stream routes ground truth through the streaming dataset
	// subsystem (internal/stream): traces are synthesised, simulated
	// and windowed one heatmap window at a time through a bounded
	// channel pipeline instead of being materialised, and — when a
	// store is attached — training datasets are built as sharded
	// content-addressed manifests and fetched per batch. Every
	// artifact (cached pairs, trained models) is byte-identical to the
	// materialised path at any Workers width.
	Stream bool

	// logMu serialises progress output: with Workers > 1 the pool's
	// tasks may log (e.g. store warnings) concurrently.
	logMu sync.Mutex
}

// NewRunner builds a runner writing human-readable results to out.
func NewRunner(scale Scale, artifactsDir string, out io.Writer) *Runner {
	if out == nil {
		out = io.Discard
	}
	return &Runner{
		Scale:        scale,
		Profile:      ProfileFor(scale),
		ArtifactsDir: artifactsDir,
		Out:          out,
		SplitSeed:    42,
	}
}

func (r *Runner) logf(format string, args ...any) {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	//lint:ignore unchecked-error progress logging; a failing log writer must not abort an experiment run
	fmt.Fprintf(r.Out, format, args...)
}

// workers resolves the runner's pool width.
func (r *Runner) workers() int {
	if r.Workers <= 0 {
		return par.DefaultWorkers()
	}
	return r.Workers
}

// suites builds the three benchmark suites at the runner's scale.
func (r *Runner) suites() []workload.Suite {
	p := r.Profile
	return []workload.Suite{
		workload.SpecLike(p.SpecGroups, p.SpecPhases, p.Ops),
		workload.LigraLike(p.Ops, p.SuiteScale),
		workload.PolyLike(p.Ops, p.SuiteScale),
	}
}

// specSuite builds only the spec-like suite (most experiments, like
// the paper's, run on SPEC "due to high volume of data").
func (r *Runner) specSuite() workload.Suite {
	p := r.Profile
	return workload.SpecLike(p.SpecGroups, p.SpecPhases, p.Ops)
}

// split returns the 80/20 benchmark split (grouped by program).
func (r *Runner) split(benches []workload.Benchmark) (train, test []workload.Benchmark) {
	return workload.Split(benches, 0.8, r.SplitSeed)
}

// pairsFor returns capped heatmap pairs plus the true hit rate for one
// benchmark/config, memoised through the artifact store when one is
// attached: a warm-store call returns the cached simulation result
// without running the simulator at all.
func (r *Runner) pairsFor(ctx context.Context, b workload.Benchmark, cfg cachesim.Config) ([]heatmap.Pair, float64, error) {
	var key store.Key
	if r.Store != nil {
		key = store.PairsKey(b, cfg, r.Profile.Heatmap, r.Profile.MaxPairs, r.SplitSeed)
		if art, err := r.Store.LoadPairs(key); err == nil {
			return art.Pairs, art.HitRate, nil
		}
	}
	var pairs []heatmap.Pair
	var hr float64
	if r.Stream {
		// Streaming path: synthesis, simulation and windowing fused in
		// one pass, never materialising the trace. stream.Run counts
		// the sim run and emits pairs byte-identical to BuildPair; the
		// cap is applied at the source, and without StopEarly the
		// whole-trace hit rate is still exact — so the cached artifact
		// below is byte-identical to the materialised path's.
		res, err := stream.Run(ctx, b, cfg,
			stream.RunConfig{Heatmap: r.Profile.Heatmap, MaxWindows: r.Profile.MaxPairs},
			func(w stream.Window) error {
				pairs = append(pairs, w.Pair)
				return nil
			})
		if err != nil {
			return nil, 0, err
		}
		hr = res.HitRate
	} else {
		metrics.SimRuns.Inc()
		_, traceSpan := obs.Start(ctx, "workload.trace")
		traceSpan.Tag("bench", b.Name)
		tr := b.Trace()
		traceSpan.End()
		_, simSpan := obs.Start(ctx, "sim.run")
		simSpan.Tag("bench", b.Name)
		lt := cachesim.RunTrace(cachesim.New(cfg), tr)
		simSpan.End()
		_, pairSpan := obs.Start(ctx, "heatmap.pairs")
		var err error
		pairs, err = heatmap.BuildPair(r.Profile.Heatmap, lt.Accesses, lt.Misses)
		pairSpan.End()
		if err != nil {
			return nil, 0, err
		}
		if r.Profile.MaxPairs > 0 && len(pairs) > r.Profile.MaxPairs {
			pairs = pairs[:r.Profile.MaxPairs]
		}
		hr = lt.HitRate()
	}
	if r.Store != nil {
		if err := r.Store.SavePairs(key, &store.PairsArtifact{Pairs: pairs, HitRate: hr}); err != nil {
			r.logf("[store] warning: could not cache pairs for %s: %v\n", b.Name, err)
		}
	}
	return pairs, hr, nil
}

// benchTruth is one benchmark's simulated ground truth: the parallel
// simulation stage produces these, the serial commit stage consumes
// them in benchmark order.
type benchTruth struct {
	pairs []heatmap.Pair
	hr    float64
	err   error
}

// truths runs pairsFor over benches × one config on the worker pool,
// returning per-benchmark results in input order. Per-benchmark
// failures are carried in the result (the serial callers decide
// whether to skip or abort), so one short trace never cancels the
// whole fan-out.
func (r *Runner) truths(benches []workload.Benchmark, cfg cachesim.Config) []benchTruth {
	out, err := par.Map(context.Background(), r.workers(), benches,
		func(ctx context.Context, _ int, b workload.Benchmark) (benchTruth, error) {
			pairs, hr, perr := r.pairsFor(ctx, b, cfg)
			return benchTruth{pairs: pairs, hr: hr, err: perr}, nil
		})
	if err != nil {
		// Only a panicking task can get here; surface it on every row
		// so callers fail loudly instead of indexing a nil slice.
		out = make([]benchTruth, len(benches))
		for i := range out {
			out[i] = benchTruth{err: err}
		}
	}
	return out
}

// dataset assembles training samples over benches × cfgs, applying the
// high-data-regime threshold. Simulation fans out across the worker
// pool; samples are committed in the serial (cfg, bench) order, so the
// dataset is identical to a serial build.
func (r *Runner) dataset(benches []workload.Benchmark, cfgs []cachesim.Config, minHit float64) ([]core.Sample, error) {
	type item struct {
		cfg   cachesim.Config
		bench workload.Benchmark
	}
	var items []item
	for _, cfg := range cfgs {
		for _, b := range benches {
			items = append(items, item{cfg: cfg, bench: b})
		}
	}
	res, err := par.Map(context.Background(), r.workers(), items,
		func(ctx context.Context, _ int, it item) (benchTruth, error) {
			pairs, hr, perr := r.pairsFor(ctx, it.bench, it.cfg)
			if perr != nil {
				return benchTruth{}, fmt.Errorf("harness: %s: %w", it.bench.Name, perr)
			}
			return benchTruth{pairs: pairs, hr: hr}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []core.Sample
	for i, it := range items {
		if res[i].hr < minHit {
			continue
		}
		params := core.CacheParams(it.cfg)
		for _, pr := range res[i].pairs {
			out = append(out, core.Sample{Access: pr.Access, Miss: pr.Miss, Params: params, Bench: it.bench.Name})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: empty dataset")
	}
	return out, nil
}

// datasetSource returns the training dataset as a lazily served
// sample source. With Stream set and a store attached, the samples
// come from a sharded streaming dataset (stream.Build): windows flow
// through the bounded channel pipeline straight into content-addressed
// shards and are fetched per batch during training, so the dataset is
// never fully materialised in memory. Either way the served sample
// sequence — and therefore any model trained on it — is byte-identical
// to the in-memory path.
func (r *Runner) datasetSource(name string, benches []workload.Benchmark, cfgs []cachesim.Config, minHit float64) (core.SampleSource, error) {
	if r.Stream && r.Store != nil {
		man, _, err := stream.Build(context.Background(), r.Store, benches, cfgs, stream.BuildConfig{
			Name:       name,
			Heatmap:    r.Profile.Heatmap,
			MaxWindows: r.Profile.MaxPairs,
			MinHitRate: minHit,
			Workers:    r.workers(),
		})
		if err != nil {
			return nil, err
		}
		ds, err := stream.OpenDataset(r.Store, man)
		if err != nil {
			return nil, err
		}
		if ds.Len() == 0 {
			return nil, fmt.Errorf("harness: empty dataset")
		}
		r.logf("[%s] %s\n", name, man.Summary())
		return ds, nil
	}
	samples, err := r.dataset(benches, cfgs, minHit)
	if err != nil {
		return nil, err
	}
	return core.SliceSource(samples), nil
}

// modelPath places a cached model artifact.
func (r *Runner) modelPath(name string) string {
	return filepath.Join(r.ArtifactsDir, fmt.Sprintf("%s-%s.cbgan", r.Scale, name))
}

// modelKey derives the store key for a named trained model. Unlike the
// legacy file cache (which keys on scale+name alone), it includes the
// split seed: a model trained on a different train/test split is a
// different artifact.
func (r *Runner) modelKey(name string) store.Key {
	k := store.Key{
		Kind:   "model",
		Format: 1,
		Inputs: map[string]string{
			"name":       name,
			"scale":      r.Scale.String(),
			"split_seed": fmt.Sprintf("%d", r.SplitSeed),
		},
	}
	// Sharded training is a different float reduction order, hence a
	// different artifact; serial runs keep the historical key so warm
	// stores stay warm.
	if r.Train.Parallel.Shards > 1 {
		k.Inputs["shards"] = fmt.Sprintf("%d", r.Train.Parallel.Shards)
	}
	return k
}

// trainConfig builds the TrainConfig for a named harness model: the
// runner's base config (Parallel section, BatchSize override) plus the
// experiment's epochs/seed and the runner's checkpoint/resume policy.
// The checkpoint lands next to the model artifact as
// <scale>-<name>.ckpt.
func (r *Runner) trainConfig(name string, epochs int, seed int64) core.TrainConfig {
	cfg := core.TrainConfig{
		Epochs:    epochs,
		BatchSize: r.Profile.BatchSize,
		Seed:      seed,
		Parallel:  r.Train.Parallel,
	}
	if r.Train.BatchSize > 0 {
		cfg.BatchSize = r.Train.BatchSize
	}
	if r.CheckpointEvery <= 0 || r.ArtifactsDir == "" {
		return cfg
	}
	if err := os.MkdirAll(r.ArtifactsDir, 0o755); err != nil {
		r.logf("[%s] warning: no artifacts dir, checkpointing disabled: %v\n", name, err)
		return cfg
	}
	cfg.Checkpoint.Every = r.CheckpointEvery
	cfg.Checkpoint.Path = filepath.Join(r.ArtifactsDir, fmt.Sprintf("%s-%s.ckpt", r.Scale, name))
	if r.Resume {
		if c, err := core.LoadCheckpointFile(cfg.Checkpoint.Path); err == nil {
			cfg.ResumeFrom = c
		} else if !os.IsNotExist(err) {
			r.logf("[%s] warning: ignoring unusable checkpoint %s: %v\n", name, cfg.Checkpoint.Path, err)
		}
	}
	return cfg
}

// trainOrLoad returns the named model, training it with build() on a
// cache miss and persisting the result. The store (when attached) is
// consulted before the legacy per-scale model file.
func (r *Runner) trainOrLoad(name string, build func() (*core.Model, error)) (*core.Model, error) {
	if r.Store != nil {
		if rc, _, err := r.Store.Get(r.modelKey(name)); err == nil {
			m, lerr := core.Load(rc)
			cerr := rc.Close()
			if lerr == nil && cerr == nil {
				r.logf("[%s] loaded model from store\n", name)
				return m, nil
			}
			r.logf("[%s] warning: stored model unusable: load=%v close=%v\n", name, lerr, cerr)
		}
	}
	path := r.modelPath(name)
	if m, err := core.LoadFile(path); err == nil {
		r.logf("[%s] loaded cached model %s\n", name, path)
		return m, nil
	}
	t0 := time.Now()
	m, err := build()
	if err != nil {
		return nil, err
	}
	r.logf("[%s] trained in %.1fs\n", name, time.Since(t0).Seconds())
	if r.ArtifactsDir != "" {
		if err := os.MkdirAll(r.ArtifactsDir, 0o755); err == nil {
			if err := m.SaveFile(path); err != nil {
				r.logf("[%s] warning: could not cache model: %v\n", name, err)
			}
		}
	}
	if r.Store != nil {
		//lint:ignore determinism-taint the clock here only feeds the trained-in log line; the stored bytes come from m.Save alone
		if _, err := r.Store.Put(r.modelKey(name), m.Save); err != nil {
			r.logf("[%s] warning: could not store model: %v\n", name, err)
		}
	}
	return m, nil
}

// evaluatePairs scores a model's prediction against one benchmark's
// simulated pairs. It is the serial stage of an evaluation: the pairs
// come from a (possibly parallel) truths call, but the generator's
// forward pass is not safe for concurrent use on one model, so
// prediction runs on the calling goroutine.
func (r *Runner) evaluatePairs(m *core.Model, name string, pairs []heatmap.Pair, params []float32, batch int) (trueHR, predHR float64, err error) {
	if len(pairs) == 0 {
		return 0, 0, fmt.Errorf("harness: %s yields no heatmaps", name)
	}
	var access, miss []*heatmap.Heatmap
	for _, pr := range pairs {
		access = append(access, pr.Access)
		miss = append(miss, pr.Miss)
	}
	trueHR, err = heatmap.HitRate(r.Profile.Heatmap, access, miss)
	if err != nil {
		return 0, 0, err
	}
	pred := m.Predict(access, params, batch)
	for i := range pred {
		pred[i] = heatmap.ConstrainMiss(pred[i], access[i])
	}
	predHR, err = heatmap.HitRate(r.Profile.Heatmap, access, pred)
	return trueHR, predHR, err
}

// evaluate predicts a benchmark's hit rate under cfg with the model
// and compares against the simulator.
func (r *Runner) evaluate(m *core.Model, b workload.Benchmark, cfg cachesim.Config, batch int) (trueHR, predHR float64, err error) {
	pairs, _, err := r.pairsFor(context.Background(), b, cfg)
	if err != nil {
		return 0, 0, err
	}
	return r.evaluatePairs(m, b.Name, pairs, core.CacheParams(cfg), batch)
}

// BenchRow is one per-benchmark result line.
type BenchRow struct {
	Bench    string
	TrueHit  float64
	PredHit  float64
	AbsDiff  float64 // percentage points
	Excluded bool
}

// renderRows prints a result table and returns the mean abs diff of
// included rows.
func (r *Runner) renderRows(title string, rows []BenchRow) float64 {
	r.logf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	r.logf("%-34s %9s %9s %9s\n", "benchmark", "true", "pred", "|diff|%")
	var diffs []float64
	for _, row := range rows {
		if row.Excluded {
			r.logf("%-34s %9s %9s %9s\n", row.Bench, "excl", "-", "-")
			continue
		}
		marker := ""
		switch {
		case row.AbsDiff < 1:
			marker = " •" // the paper's black dot: <1%
		case row.AbsDiff < 2:
			marker = " *" // the paper's green star: 1-2%
		}
		r.logf("%-34s %9.4f %9.4f %8.2f%s\n", row.Bench, row.TrueHit, row.PredHit, row.AbsDiff, marker)
		diffs = append(diffs, row.AbsDiff)
	}
	avg := metrics.Mean(diffs)
	r.logf("average absolute percentage difference: %.2f%% over %d benchmarks\n", avg, len(diffs))
	return avg
}

// sortRows orders rows by name for stable output.
func sortRows(rows []BenchRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bench < rows[j].Bench })
}
