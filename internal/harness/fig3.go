package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"cachebox/internal/heatmap"
	"cachebox/internal/workload"
)

// Fig3Result reports where the rendered heatmap PNGs were written.
type Fig3Result struct {
	Paths []string
}

// Fig3 reproduces Figures 3 and 4: it renders a Polybench-style
// benchmark's access and miss heatmaps (including a consecutive pair
// showing the 30% overlap) as PNG files under the artifacts directory.
func (r *Runner) Fig3() (*Fig3Result, error) {
	suite := workload.PolyLike(r.Profile.Ops, r.Profile.SuiteScale)
	b := suite.Benchmarks[0]
	pairs, _, err := r.pairsFor(b, L1Default)
	if err != nil {
		return nil, err
	}
	if len(pairs) < 2 {
		return nil, fmt.Errorf("harness: %s too short for consecutive heatmaps", b.Name)
	}
	dir := filepath.Join(r.ArtifactsDir, "fig3")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	res := &Fig3Result{}
	write := func(name string, m *heatmap.Heatmap) error {
		path := filepath.Join(dir, name)
		if err := heatmap.WritePNG(path, m); err != nil {
			return err
		}
		res.Paths = append(res.Paths, path)
		return nil
	}
	for i := 0; i < 2; i++ {
		if err := write(fmt.Sprintf("access-%d.png", i), pairs[i].Access); err != nil {
			return nil, err
		}
		if err := write(fmt.Sprintf("miss-%d.png", i), pairs[i].Miss); err != nil {
			return nil, err
		}
	}
	r.logf("\nFigure 3/4: wrote %d heatmap PNGs for %s under %s\n", len(res.Paths), b.Name, dir)
	r.logf("consecutive images overlap by %d of %d columns (30%%)\n",
		r.Profile.Heatmap.OverlapCols(), r.Profile.Heatmap.Width)
	return res, nil
}
