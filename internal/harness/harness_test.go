package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyRunner builds a Tiny-scale runner with a temp artifact dir.
func tinyRunner(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	r := NewRunner(Tiny, t.TempDir(), &buf)
	return r, &buf
}

func TestParseScale(t *testing.T) {
	cases := map[string]Scale{"tiny": Tiny, "small": Small, "full": Full, "": Small}
	for in, want := range cases {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("nope"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if Tiny.String() != "tiny" || Small.String() != "small" || Full.String() != "full" {
		t.Fatal("scale names wrong")
	}
	if Scale(99).String() != "unknown" {
		t.Fatal("unknown scale name wrong")
	}
}

func TestProfilesValid(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Full} {
		p := ProfileFor(s)
		if err := p.Heatmap.Validate(); err != nil {
			t.Fatalf("%s heatmap config: %v", s, err)
		}
		if err := p.Model.Validate(); err != nil {
			t.Fatalf("%s model config: %v", s, err)
		}
		if p.Heatmap.Height != p.Model.ImageSize {
			t.Fatalf("%s: heatmap %d != model %d", s, p.Heatmap.Height, p.Model.ImageSize)
		}
		if p.Ops <= 0 || p.Epochs <= 0 || p.BatchSize <= 0 {
			t.Fatalf("%s: degenerate profile %+v", s, p)
		}
	}
}

func TestFig3WritesPNGs(t *testing.T) {
	r, buf := tinyRunner(t)
	res, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 5 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	for _, p := range res.Paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing png %s: %v", p, err)
		}
	}
	if !strings.Contains(buf.String(), "overlap") {
		t.Fatal("no overlap note in output")
	}
}

func TestFig14Histogram(t *testing.T) {
	r, buf := tinyRunner(t)
	res, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmarks == 0 || len(res.Bins) != 20 {
		t.Fatalf("res %+v", res)
	}
	total := 0
	for _, b := range res.Bins {
		total += b.Count
	}
	if total != res.Benchmarks {
		t.Fatalf("histogram covers %d of %d", total, res.Benchmarks)
	}
	// The suite is skewed high, like the paper's SPEC population.
	if res.FracAbove65L1 < 0.5 {
		t.Fatalf("L1 fraction above 65%% = %v, want skew towards high hit rates", res.FracAbove65L1)
	}
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Fatal("missing output header")
	}
}

func TestFig7EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	r, buf := tinyRunner(t)
	res, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if !row.Excluded && (row.PredHit < 0 || row.PredHit > 1) {
			t.Fatalf("row %+v out of range", row)
		}
	}
	if !strings.Contains(buf.String(), "average absolute percentage difference") {
		t.Fatal("missing summary line")
	}
	// The model must be cached for reuse.
	if _, err := os.Stat(filepath.Join(r.ArtifactsDir, "tiny-fig7-rq1-mixed.cbgan")); err != nil {
		t.Fatalf("model not cached: %v", err)
	}
	// Re-running loads the cache (fast path).
	if _, err := r.Fig7(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "loaded cached model") {
		t.Fatal("cache not used on rerun")
	}
}

func TestFig8AndFig9ShareModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	r, buf := tinyRunner(t)
	res8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res8.Configs) != 4 {
		t.Fatalf("fig8 configs = %d", len(res8.Configs))
	}
	res9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res9.Configs) != 3 {
		t.Fatalf("fig9 configs = %d", len(res9.Configs))
	}
	if strings.Count(buf.String(), "[rq2] training") != 1 {
		t.Fatal("rq2 model trained more than once")
	}
}

func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	r, _ := tinyRunner(t)
	res, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BatchSizes) != 6 || len(res.Seconds) != 6 {
		t.Fatalf("res %+v", res)
	}
	if res.Speedup32 <= 0 {
		t.Fatalf("speedup %v", res.Speedup32)
	}
	for _, s := range res.Seconds {
		if s <= 0 {
			t.Fatalf("non-positive timing %v", s)
		}
	}
	// At tiny scale the per-call timings are single-digit milliseconds
	// and scheduler noise dominates, so only sanity-bound the ratio;
	// the Small-scale run in EXPERIMENTS.md shows the real speedup.
	if res.Seconds[len(res.Seconds)-1] > res.Seconds[0]*10 {
		t.Fatalf("batch-32 pathologically slower than batch-1: %v vs %v", res.Seconds[5], res.Seconds[0])
	}
}

func TestFig13Prefetcher(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	r, _ := tinyRunner(t)
	res, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.SSIM < -1 || row.SSIM > 1 {
			t.Fatalf("SSIM %v out of range", row.SSIM)
		}
		if row.MSE < 0 {
			t.Fatalf("negative MSE %v", row.MSE)
		}
	}
}

func TestTable1Columns(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	r, buf := tinyRunner(t)
	res, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		for _, name := range []string{"tab-base", "tab-rd", "tab-ic", "hrd", "stm"} {
			if _, ok := row.Baselines[name]; !ok {
				t.Fatalf("row %s missing baseline %s", row.Group, name)
			}
		}
		if row.CBoxBest > row.CBoxWorst {
			t.Fatalf("best %v > worst %v", row.CBoxBest, row.CBoxWorst)
		}
		if row.CBoxAvg < row.CBoxBest || row.CBoxAvg > row.CBoxWorst {
			t.Fatalf("avg %v outside [best, worst]", row.CBoxAvg)
		}
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("missing table header")
	}
}

func TestFig10RunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	r, _ := tinyRunner(t)
	res, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Combined) == 0 {
		t.Fatal("no combined results")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	r, buf := tinyRunner(t)
	results, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("ablations = %d", len(results))
	}
	for _, res := range results {
		if len(res.Points) != 4 {
			t.Fatalf("%s points = %d", res.Name, len(res.Points))
		}
		for _, p := range res.Points {
			if p.Average < 0 || p.Average > 100 {
				t.Fatalf("%s %s avg = %v", res.Name, p.Label, p.Average)
			}
		}
	}
	if !strings.Contains(buf.String(), "Ablation:") {
		t.Fatal("no ablation output")
	}
}
