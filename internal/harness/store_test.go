package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cachebox/internal/core"
	"cachebox/internal/metrics"
	"cachebox/internal/store"
)

// storeRunner builds a Tiny-scale runner with a store rooted in its own
// temp dir, so two runners can share one warm store.
func storeRunner(t *testing.T, storeDir string) *Runner {
	t.Helper()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(Tiny, t.TempDir(), &bytes.Buffer{})
	r.Store = st
	return r
}

// TestFig3WarmStoreSkipsSimulator is the issue's acceptance check:
// rerunning a figure against a warm store performs zero simulator
// invocations, registers store hits, and reproduces byte-identical
// artifacts. The runtime counters are process-global, so the test
// measures deltas rather than absolute values.
func TestFig3WarmStoreSkipsSimulator(t *testing.T) {
	storeDir := t.TempDir()

	cold := storeRunner(t, storeDir)
	sims0 := metrics.SimRuns.Value()
	res1, err := cold.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.SimRuns.Value() == sims0 {
		t.Fatal("cold run did not invoke the simulator")
	}

	warm := storeRunner(t, storeDir)
	sims1 := metrics.SimRuns.Value()
	hits1 := metrics.StoreHits.Value()
	res2, err := warm.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.SimRuns.Value(); got != sims1 {
		t.Fatalf("warm rerun ran the simulator %d time(s)", got-sims1)
	}
	if metrics.StoreHits.Value() == hits1 {
		t.Fatal("warm rerun registered no store hits")
	}

	if len(res1.Paths) != len(res2.Paths) {
		t.Fatalf("path counts differ: %d vs %d", len(res1.Paths), len(res2.Paths))
	}
	for i := range res1.Paths {
		a, err := os.ReadFile(res1.Paths[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(res2.Paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("warm-store artifact %s differs from cold run", filepath.Base(res2.Paths[i]))
		}
	}
}

// TestSplitSeedChangesStoreKeys: runs with different train/test splits
// must never share cached simulation results.
func TestSplitSeedChangesStoreKeys(t *testing.T) {
	storeDir := t.TempDir()

	r1 := storeRunner(t, storeDir)
	if _, err := r1.Fig3(); err != nil {
		t.Fatal(err)
	}

	r2 := storeRunner(t, storeDir)
	r2.SplitSeed = 43
	sims := metrics.SimRuns.Value()
	if _, err := r2.Fig3(); err != nil {
		t.Fatal(err)
	}
	if metrics.SimRuns.Value() == sims {
		t.Fatal("different split seed reused another split's cache entry")
	}
}

// TestTrainOrLoadFromStore: a model published to the store by one
// runner is loaded — not rebuilt — by a second runner with an empty
// artifacts directory.
func TestTrainOrLoadFromStore(t *testing.T) {
	storeDir := t.TempDir()
	build := func() (*core.Model, error) {
		cfg := core.DefaultConfig()
		cfg.ImageSize = 16
		cfg.NGF = 2
		cfg.NDF = 2
		cfg.DLayers = 1
		cfg.CondHidden = 4
		cfg.CondChannels = 2
		cfg.Seed = 5
		return core.NewModel(cfg)
	}

	r1 := storeRunner(t, storeDir)
	m1, err := r1.trainOrLoad("store-roundtrip", build)
	if err != nil {
		t.Fatal(err)
	}

	r2 := storeRunner(t, storeDir)
	m2, err := r2.trainOrLoad("store-roundtrip", func() (*core.Model, error) {
		t.Fatal("model rebuilt despite warm store")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := m1.Save, m2.Save
	var b1, b2 bytes.Buffer
	if err := s1(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("stored model round-trip is not byte-identical")
	}

	// A different split seed is a different model artifact: the build
	// function must run again.
	r3 := storeRunner(t, storeDir)
	r3.SplitSeed = 43
	built := false
	if _, err := r3.trainOrLoad("store-roundtrip", func() (*core.Model, error) {
		built = true
		return build()
	}); err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Fatal("split-seed 43 model served from split-seed 42 cache entry")
	}
}
