package harness

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/par"
	"cachebox/internal/workload"
	"context"
	"fmt"
)

// Fig13Row is one benchmark's prefetcher-modelling accuracy.
type Fig13Row struct {
	Bench string
	MSE   float64
	SSIM  float64
}

// Fig13Result is the RQ7 outcome: CB-GAN trained on access→prefetch
// heatmap pairs for a next-line prefetcher (paper Figure 13: low MSE,
// high SSIM).
type Fig13Result struct {
	Rows     []Fig13Row
	MeanMSE  float64
	MeanSSIM float64
}

// prefetchPairs simulates bench with a recording next-line prefetcher
// on the L1 and builds aligned access/prefetch heatmap pairs.
func (r *Runner) prefetchPairs(b workload.Benchmark) ([]heatmap.Pair, error) {
	c := cachesim.New(L1Default)
	rec := &cachesim.RecordingPrefetcher{Inner: &cachesim.NextLinePrefetcher{}}
	c.Prefetcher = rec
	tr := b.Trace()
	metrics.SimRuns.Inc()
	cachesim.RunTrace(c, tr)
	pf := heatmap.PrefetchTrace(b.Name+".prefetch", rec.Records, 6)
	if tr.Len() == 0 {
		return nil, fmt.Errorf("harness: empty trace")
	}
	baseIC := tr.Accesses[0].IC
	am, err := heatmap.Build(r.Profile.Heatmap, tr, baseIC)
	if err != nil {
		return nil, err
	}
	pm, err := heatmap.Build(r.Profile.Heatmap, pf, baseIC)
	if err != nil {
		return nil, err
	}
	n := len(am)
	if len(pm) < n {
		n = len(pm)
	}
	if r.Profile.MaxPairs > 0 && n > r.Profile.MaxPairs {
		n = r.Profile.MaxPairs
	}
	pairs := make([]heatmap.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = heatmap.Pair{Access: am[i], Miss: pm[i]}
	}
	return pairs, nil
}

// Fig13 runs RQ7: learn next-line prefetcher behaviour and report
// MSE/SSIM between Real and Synthetic prefetch heatmaps. Following
// the paper, only a subset of the suite is used.
func (r *Runner) Fig13() (*Fig13Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig13")
	defer figSpan.End()
	train, test := r.split(r.specSuite().Benchmarks)
	params := core.CacheParams(L1Default)
	m, err := r.trainOrLoad("fig13-prefetch", func() (*core.Model, error) {
		// Prefetch simulation fans out; samples commit in train order.
		trainPairs, err := par.Map(context.Background(), r.workers(), train,
			func(_ context.Context, _ int, b workload.Benchmark) ([]heatmap.Pair, error) {
				return r.prefetchPairs(b)
			})
		if err != nil {
			return nil, err
		}
		var ds []core.Sample
		for i, b := range train {
			for _, pr := range trainPairs[i] {
				ds = append(ds, core.Sample{Access: pr.Access, Miss: pr.Miss, Params: params, Bench: b.Name})
			}
		}
		if len(ds) == 0 {
			return nil, fmt.Errorf("harness: no prefetch samples")
		}
		mc := r.Profile.Model
		// Prefetch heatmaps are as dense as access heatmaps (next-line
		// fires on every access), so give the target codec the access
		// cap.
		mc.MissPixelCap = mc.PixelCap
		model, err := core.NewModel(mc)
		if err != nil {
			return nil, err
		}
		r.logf("[fig13] training on %d access/prefetch pairs\n", len(ds))
		if _, err := model.Train(ds, r.trainConfig("fig13-prefetch", r.Profile.EpochsAux, 7)); err != nil {
			return nil, err
		}
		return model, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{}
	r.logf("\nFigure 13 (RQ7): next-line prefetcher modelling (MSE / SSIM per benchmark)\n")
	var mses, ssims []float64
	type pfTruth struct {
		pairs []heatmap.Pair
		err   error
	}
	testPairs, mapErr := par.Map(context.Background(), r.workers(), test,
		func(_ context.Context, _ int, b workload.Benchmark) (pfTruth, error) {
			pairs, perr := r.prefetchPairs(b)
			return pfTruth{pairs: pairs, err: perr}, nil
		})
	if mapErr != nil {
		return nil, mapErr
	}
	for i, b := range test {
		pairs := testPairs[i].pairs
		if testPairs[i].err != nil || len(pairs) == 0 {
			continue
		}
		var access, real []*heatmap.Heatmap
		for _, pr := range pairs {
			access = append(access, pr.Access)
			real = append(real, pr.Miss)
		}
		pred := m.Predict(access, params, 8)
		var mse, ssim float64
		for i := range pred {
			mv, err := metrics.MSE(pred[i], real[i])
			if err != nil {
				return nil, err
			}
			sv, err := metrics.SSIM(pred[i], real[i], float64(m.Cfg.PixelCap))
			if err != nil {
				return nil, err
			}
			mse += mv
			ssim += sv
		}
		mse /= float64(len(pred))
		ssim /= float64(len(pred))
		res.Rows = append(res.Rows, Fig13Row{Bench: b.Name, MSE: mse, SSIM: ssim})
		mses = append(mses, mse)
		ssims = append(ssims, ssim)
		r.logf("%-34s MSE=%9.4f SSIM=%7.4f\n", b.Name, mse, ssim)
	}
	res.MeanMSE = metrics.Mean(mses)
	res.MeanSSIM = metrics.Mean(ssims)
	r.logf("mean MSE=%.4f mean SSIM=%.4f\n", res.MeanMSE, res.MeanSSIM)
	return res, nil
}
