package harness

import (
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/multicachesim"
	"cachebox/internal/obs"
	"cachebox/internal/workload"
	"context"
	"time"
)

// Fig11Result is the RQ5 outcome: CB-GAN inference time per batch
// size, the batch-32 speedup over batch-1 (paper: 2.4×), and the
// MultiCacheSim comparison (paper: sequential CBox ≈ 1.67× faster).
type Fig11Result struct {
	BatchSizes []int
	// Seconds[i] is the wall time to predict the whole heatmap set at
	// BatchSizes[i].
	Seconds []float64
	// Speedup32 is Seconds[batch=1] / Seconds[batch=32].
	Speedup32 float64
	// MCSSeconds is MultiCacheSim's wall time over the same trace;
	// CBoxVsMCS is MCSSeconds / sequential CBox seconds.
	MCSSeconds float64
	CBoxVsMCS  float64
	Heatmaps   int
}

// Fig11 measures batched inference. Batching folds each network layer
// of the whole batch into one large GEMM, so bigger batches amortise
// per-layer overhead — the same mechanism (amortising fixed per-call
// cost) that gives GPUs their batched speedup in the paper.
func (r *Runner) Fig11() (*Fig11Result, error) {
	_, figSpan := obs.Start(context.Background(), "harness.fig11")
	defer figSpan.End()
	train, test := r.split(r.specSuite().Benchmarks)
	m, err := r.rq2Model(train)
	if err != nil {
		return nil, err
	}
	cfg := L1Default
	// Collect a pool of access heatmaps from the test benchmarks.
	var access []*heatmap.Heatmap
	var traceLen int
	mcs, err := multicachesim.New(1, multicachesim.Config{Sets: cfg.Sets, Ways: cfg.Ways})
	if err != nil {
		return nil, err
	}
	var mcsTime time.Duration
	// Trace synthesis fans out across the worker pool; the timed
	// simulator passes below stay serial so the wall-clock comparison
	// is undistorted by sibling tasks.
	traces, err := workload.Traces(context.Background(), r.workers(), test)
	if err != nil {
		return nil, err
	}
	for i := range test {
		tr := traces[i]
		traceLen += tr.Len()
		t0 := time.Now()
		metrics.SimRuns.Inc()
		mcs.RunTrace(tr)
		mcsTime += time.Since(t0)
		metrics.SimRuns.Inc()
		lt := cachesim.RunTrace(cachesim.New(cfg), tr)
		pairs, err := heatmap.BuildPair(r.Profile.Heatmap, lt.Accesses, lt.Misses)
		if err != nil {
			return nil, err
		}
		if r.Profile.MaxPairs > 0 && len(pairs) > r.Profile.MaxPairs {
			pairs = pairs[:r.Profile.MaxPairs]
		}
		for _, pr := range pairs {
			access = append(access, pr.Access)
		}
	}
	params := core.CacheParams(cfg)
	res := &Fig11Result{BatchSizes: []int{1, 2, 4, 8, 16, 32}, Heatmaps: len(access)}
	r.logf("\nFigure 11 (RQ5): inference time vs batch size (%d heatmaps, %d trace accesses)\n", len(access), traceLen)
	m.Predict(access[:min(4, len(access))], params, 2) // warm up allocator
	for _, bs := range res.BatchSizes {
		t0 := time.Now()
		m.Predict(access, params, bs)
		secs := time.Since(t0).Seconds()
		res.Seconds = append(res.Seconds, secs)
		r.logf("batch %2d: %8.3fs (%.1f heatmaps/s)\n", bs, secs, float64(len(access))/secs)
	}
	res.Speedup32 = res.Seconds[0] / res.Seconds[len(res.Seconds)-1]
	res.MCSSeconds = mcsTime.Seconds()
	res.CBoxVsMCS = res.MCSSeconds / res.Seconds[0]
	r.logf("batch-32 speedup over batch-1: %.2fx (paper: 2.4x)\n", res.Speedup32)
	r.logf("MultiCacheSim: %.3fs; sequential CBox vs MCS: %.2fx (paper: ~1.67x)\n", res.MCSSeconds, res.CBoxVsMCS)
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
