package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cachebox/internal/store"
)

// fig7Model runs a fresh tiny fig7 into its own artifact dir and store
// and returns the trained model's artifact bytes.
func fig7Model(t *testing.T, streamed bool, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := NewRunner(Tiny, t.TempDir(), &buf)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r.Store = st
	r.Stream = streamed
	r.Workers = workers
	if _, err := r.Fig7(); err != nil {
		t.Fatalf("fig7 (stream=%v -j%d): %v\n%s", streamed, workers, err, buf.String())
	}
	data, err := os.ReadFile(filepath.Join(r.ArtifactsDir, "tiny-fig7-rq1-mixed.cbgan"))
	if err != nil {
		t.Fatalf("fig7 (stream=%v -j%d) left no model artifact: %v", streamed, workers, err)
	}
	return data
}

// The golden streamed-vs-materialised contract: a fig7 run whose
// ground truth flows through the streaming dataset subsystem (windows
// over a bounded channel into sharded store entries, training fetching
// per batch) must produce a byte-identical model artifact to the
// materialised in-memory run, at any worker-pool width.
func TestFig7StreamedMatchesMaterialised(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	want := fig7Model(t, false, 4)
	if got := fig7Model(t, true, 1); !bytes.Equal(want, got) {
		t.Fatal("streamed -j1 fig7 model differs from materialised run")
	}
	if got := fig7Model(t, true, 8); !bytes.Equal(want, got) {
		t.Fatal("streamed -j8 fig7 model differs from materialised run")
	}
}
