package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cachebox/internal/cachesim"
	"cachebox/internal/store"
	"cachebox/internal/workload"
)

// hashTree walks root and returns relative path → SHA-256 for every
// regular file under it.
func hashTree(t *testing.T, root string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		out[rel] = hex.EncodeToString(sum[:])
		return nil
	})
	if err != nil {
		t.Fatalf("hashing %s: %v", root, err)
	}
	return out
}

// parallelRunner builds a Tiny runner with the given worker-pool width,
// its own artifact dir and its own store root.
func parallelRunner(t *testing.T, workers int) *Runner {
	t.Helper()
	r := NewRunner(Tiny, t.TempDir(), &bytes.Buffer{})
	r.Workers = workers
	st, err := store.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	r.Store = st
	return r
}

// TestFig3ParallelEquivalence is the determinism contract of the -j
// flag made executable: the same experiment run serially and with an
// 8-wide pool, into separate store roots, must produce byte-identical
// artifact PNGs.
func TestFig3ParallelEquivalence(t *testing.T) {
	r1 := parallelRunner(t, 1)
	r8 := parallelRunner(t, 8)
	if _, err := r1.Fig3(); err != nil {
		t.Fatal(err)
	}
	if _, err := r8.Fig3(); err != nil {
		t.Fatal(err)
	}
	h1 := hashTree(t, filepath.Join(r1.ArtifactsDir, "fig3"))
	h8 := hashTree(t, filepath.Join(r8.ArtifactsDir, "fig3"))
	if len(h1) == 0 {
		t.Fatal("fig3 produced no artifacts")
	}
	if !reflect.DeepEqual(h1, h8) {
		t.Fatalf("artifacts differ between -j 1 and -j 8:\nserial:   %v\nparallel: %v", h1, h8)
	}
}

// TestDatasetParallelEquivalence checks the training-set half of the
// contract: the sample stream a fig7-style run trains on is identical
// whatever the pool width, in content and in order.
func TestDatasetParallelEquivalence(t *testing.T) {
	r1 := parallelRunner(t, 1)
	r8 := parallelRunner(t, 8)
	var benches []workload.Benchmark
	for _, s := range r1.suites() {
		benches = append(benches, s.Benchmarks...)
	}
	train, _ := r1.split(benches)
	cfgs := []cachesim.Config{L1Default}
	d1, err := r1.dataset(train, cfgs, 0.65)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := r8.dataset(train, cfgs, 0.65)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) == 0 {
		t.Fatal("empty dataset")
	}
	if !reflect.DeepEqual(d1, d8) {
		t.Fatalf("datasets differ between -j 1 and -j 8 (%d vs %d samples)", len(d1), len(d8))
	}
}
