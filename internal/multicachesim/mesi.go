package multicachesim

import (
	"fmt"

	"cachebox/internal/trace"
)

// MESIState extends MSI with the Exclusive state: a clean sole copy
// that can be written without a bus transaction.
type MESIState uint8

// MESI states.
const (
	MESIInvalid MESIState = iota
	MESIShared
	MESIExclusive
	MESIModified
)

// String returns "I", "S", "E" or "M".
func (s MESIState) String() string { return [...]string{"I", "S", "E", "M"}[s] }

type mesiLine struct {
	tag     uint64
	state   MESIState
	lastUse uint64
}

type mesiCache struct {
	sets [][]mesiLine
	mask uint64
}

// MESIStats extends Stats with silent-upgrade accounting.
type MESIStats struct {
	Stats
	// SilentUpgrades counts E→M transitions, the bus transactions MESI
	// saves over MSI.
	SilentUpgrades uint64
}

// MESISim is a snoopy MESI-coherent multi-cache simulator: the same
// role as Sim, with the Exclusive optimisation that makes private
// read-then-write sequences free of upgrade traffic.
type MESISim struct {
	cfg       Config
	blockBits uint
	caches    []mesiCache
	stats     []MESIStats
	tick      uint64
}

// NewMESI builds a MESI simulator with cores private caches.
func NewMESI(cores int, cfg Config) (*MESISim, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("multicachesim: cores must be positive, got %d", cores)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64
	}
	s := &MESISim{cfg: cfg}
	for bs := cfg.BlockSize; bs > 1; bs >>= 1 {
		s.blockBits++
	}
	for i := 0; i < cores; i++ {
		sets := make([][]mesiLine, cfg.Sets)
		for j := range sets {
			sets[j] = make([]mesiLine, cfg.Ways)
		}
		s.caches = append(s.caches, mesiCache{sets: sets, mask: uint64(cfg.Sets - 1)})
	}
	s.stats = make([]MESIStats, cores)
	return s, nil
}

// Cores returns the number of cores.
func (s *MESISim) Cores() int { return len(s.caches) }

// Stats returns the counters for core.
func (s *MESISim) Stats(core int) MESIStats { return s.stats[core] }

// State reports the coherence state of addr in core's cache.
func (s *MESISim) State(core int, addr uint64) MESIState {
	if ln := s.find(core, addr>>s.blockBits); ln != nil {
		return ln.state
	}
	return MESIInvalid
}

func (s *MESISim) find(core int, block uint64) *mesiLine {
	c := &s.caches[core]
	set := c.sets[block&c.mask]
	for i := range set {
		if set[i].state != MESIInvalid && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

func (s *MESISim) victim(core int, block uint64) *mesiLine {
	c := &s.caches[core]
	set := c.sets[block&c.mask]
	best := &set[0]
	for i := range set {
		if set[i].state == MESIInvalid {
			return &set[i]
		}
		if set[i].lastUse < best.lastUse {
			best = &set[i]
		}
	}
	return best
}

// anyOtherCopy reports whether any other cache holds block.
func (s *MESISim) anyOtherCopy(core int, block uint64) bool {
	for i := range s.caches {
		if i != core && s.find(i, block) != nil {
			return true
		}
	}
	return false
}

// Access presents one access from core, returning whether it hit in a
// usable state.
func (s *MESISim) Access(core int, addr uint64, write bool) bool {
	s.tick++
	st := &s.stats[core]
	st.Accesses++
	block := addr >> s.blockBits
	ln := s.find(core, block)
	if ln != nil {
		switch {
		case !write:
			st.Hits++
			ln.lastUse = s.tick
			return true
		case ln.state == MESIModified:
			st.Hits++
			ln.lastUse = s.tick
			return true
		case ln.state == MESIExclusive:
			// The MESI win: silent E->M upgrade, still a hit.
			st.Hits++
			st.SilentUpgrades++
			ln.state = MESIModified
			ln.lastUse = s.tick
			return true
		default: // Shared write: upgrade miss with invalidation.
			st.Misses++
			st.Upgrades++
			s.snoop(core, block, true)
			ln.state = MESIModified
			ln.lastUse = s.tick
			return false
		}
	}
	st.Misses++
	shared := s.anyOtherCopy(core, block)
	s.snoop(core, block, write)
	v := s.victim(core, block)
	v.tag = block
	v.lastUse = s.tick
	switch {
	case write:
		v.state = MESIModified
	case shared:
		v.state = MESIShared
	default:
		v.state = MESIExclusive // sole clean copy
	}
	return false
}

func (s *MESISim) snoop(core int, block uint64, write bool) {
	for i := range s.caches {
		if i == core {
			continue
		}
		ln := s.find(i, block)
		if ln == nil {
			continue
		}
		if write {
			ln.state = MESIInvalid
			s.stats[core].Invalidations++
		} else if ln.state == MESIModified || ln.state == MESIExclusive {
			ln.state = MESIShared
			s.stats[core].Downgrades++
		}
	}
}

// RunTrace drives core 0 over a trace and returns its stats.
func (s *MESISim) RunTrace(t *trace.Trace) MESIStats {
	for _, a := range t.Accesses {
		s.Access(0, a.Addr, a.Write)
	}
	return s.stats[0]
}
