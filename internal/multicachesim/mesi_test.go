package multicachesim

import (
	"math/rand"
	"testing"

	"cachebox/internal/trace"
)

func TestMESIExclusiveOnSoleRead(t *testing.T) {
	s, err := NewMESI(2, Config{Sets: 4, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Access(0, 0x100, false)
	if got := s.State(0, 0x100); got != MESIExclusive {
		t.Fatalf("sole reader state = %v, want E", got)
	}
	// A second reader turns both Shared.
	s.Access(1, 0x100, false)
	if s.State(0, 0x100) != MESIShared || s.State(1, 0x100) != MESIShared {
		t.Fatalf("states after second read: %v / %v", s.State(0, 0x100), s.State(1, 0x100))
	}
}

func TestMESISilentUpgrade(t *testing.T) {
	s, _ := NewMESI(2, Config{Sets: 4, Ways: 2})
	s.Access(0, 0x100, false) // E
	if !s.Access(0, 0x100, true) {
		t.Fatal("write to Exclusive line missed")
	}
	st := s.Stats(0)
	if st.SilentUpgrades != 1 {
		t.Fatalf("silent upgrades = %d, want 1", st.SilentUpgrades)
	}
	if st.Upgrades != 0 {
		t.Fatalf("bus upgrades = %d, want 0", st.Upgrades)
	}
	if s.State(0, 0x100) != MESIModified {
		t.Fatalf("state = %v, want M", s.State(0, 0x100))
	}
}

func TestMESISharedWriteStillUpgrades(t *testing.T) {
	s, _ := NewMESI(2, Config{Sets: 4, Ways: 2})
	s.Access(0, 0x100, false)
	s.Access(1, 0x100, false) // both S
	if s.Access(0, 0x100, true) {
		t.Fatal("write to Shared line hit")
	}
	if s.Stats(0).Upgrades != 1 {
		t.Fatal("no bus upgrade counted")
	}
	if s.State(1, 0x100) != MESIInvalid {
		t.Fatal("remote copy not invalidated")
	}
}

func TestMESIBeatsMSIOnPrivateReadWrite(t *testing.T) {
	// Private read-then-write sequences: MESI avoids the upgrade miss
	// MSI pays on every first write.
	drive := func(access func(addr uint64, write bool) bool) (hits, total int) {
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 5000; i++ {
			addr := uint64(rng.Intn(64)) * 64
			access(addr, false)
			if access(addr, true) {
				hits++
			}
			total++
		}
		return hits, total
	}
	msi, _ := New(2, Config{Sets: 16, Ways: 4})
	mesi, _ := NewMESI(2, Config{Sets: 16, Ways: 4})
	msiHits, _ := drive(func(a uint64, w bool) bool { return msi.Access(0, a, w) })
	mesiHits, total := drive(func(a uint64, w bool) bool { return mesi.Access(0, a, w) })
	if mesiHits <= msiHits {
		t.Fatalf("MESI write hits %d/%d not better than MSI %d", mesiHits, total, msiHits)
	}
}

func TestMESIDowngradeOnRemoteRead(t *testing.T) {
	s, _ := NewMESI(2, Config{Sets: 4, Ways: 2})
	s.Access(0, 0x100, true)  // M
	s.Access(1, 0x100, false) // remote read downgrades M -> S
	if s.State(0, 0x100) != MESIShared {
		t.Fatalf("state = %v, want S", s.State(0, 0x100))
	}
	if s.Stats(1).Downgrades != 1 {
		t.Fatal("downgrade not counted")
	}
	// New reader must NOT get Exclusive (another copy exists).
	if s.State(1, 0x100) != MESIShared {
		t.Fatalf("second reader state = %v, want S", s.State(1, 0x100))
	}
}

func TestMESIValidation(t *testing.T) {
	if _, err := NewMESI(0, Config{Sets: 4, Ways: 1}); err == nil {
		t.Fatal("0 cores accepted")
	}
	if _, err := NewMESI(1, Config{Sets: 3, Ways: 1}); err == nil {
		t.Fatal("bad sets accepted")
	}
	if MESIInvalid.String() != "I" || MESIExclusive.String() != "E" {
		t.Fatal("state strings wrong")
	}
}

func TestMESIRunTrace(t *testing.T) {
	s, _ := NewMESI(1, Config{Sets: 16, Ways: 4})
	tr := randomTraceFor(t, 3000, 128)
	st := s.RunTrace(tr)
	if st.Accesses != 3000 || st.Hits+st.Misses != st.Accesses {
		t.Fatalf("stats %+v", st)
	}
}

// randomTraceFor builds a small uniform-random trace for tests.
func randomTraceFor(t *testing.T, n, blocks int) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	tr := &trace.Trace{Name: "rand"}
	for i := 0; i < n; i++ {
		tr.Append(uint64(rng.Intn(blocks))*64, uint64(i), rng.Intn(4) == 0)
	}
	return tr
}
