package multicachesim

import (
	"math/rand"
	"testing"

	"cachebox/internal/cachesim"
	"cachebox/internal/trace"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{Sets: 4, Ways: 2}); err == nil {
		t.Fatal("0 cores accepted")
	}
	if _, err := New(2, Config{Sets: 3, Ways: 2}); err == nil {
		t.Fatal("non-pow2 sets accepted")
	}
	if _, err := New(2, Config{Sets: 4, Ways: 0}); err == nil {
		t.Fatal("0 ways accepted")
	}
	s, err := New(2, Config{Sets: 4, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cores() != 2 {
		t.Fatalf("cores = %d", s.Cores())
	}
}

func TestSingleCoreBasics(t *testing.T) {
	s, _ := New(1, Config{Sets: 4, Ways: 2})
	if s.Access(0, 0x100, false) {
		t.Fatal("cold access hit")
	}
	if !s.Access(0, 0x100, false) {
		t.Fatal("warm read missed")
	}
	if !s.Access(0, 0x100, true) {
		// Single core: S->M upgrade still requires a bus transaction
		// in MSI, so a write after a read is an upgrade miss.
		st := s.Stats(0)
		if st.Upgrades != 1 {
			t.Fatalf("expected upgrade miss, stats=%+v", st)
		}
	}
	if !s.Access(0, 0x100, true) {
		t.Fatal("write to Modified line missed")
	}
}

func TestWriteInvalidatesRemote(t *testing.T) {
	s, _ := New(2, Config{Sets: 4, Ways: 2})
	s.Access(0, 0x100, false) // core 0 gets S
	s.Access(1, 0x100, false) // core 1 gets S
	s.Access(1, 0x100, true)  // core 1 upgrades, invalidating core 0
	if s.Access(0, 0x100, false) {
		t.Fatal("core 0 read hit an invalidated line")
	}
	if s.Stats(1).Invalidations == 0 {
		t.Fatal("no invalidation counted")
	}
}

func TestReadDowngradesRemoteModified(t *testing.T) {
	s, _ := New(2, Config{Sets: 4, Ways: 2})
	s.Access(0, 0x100, true)  // core 0 Modified
	s.Access(1, 0x100, false) // core 1 read: downgrade core 0 to S
	if s.Stats(1).Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", s.Stats(1).Downgrades)
	}
	// Core 0 can still read without a miss (Shared is enough).
	if !s.Access(0, 0x100, false) {
		t.Fatal("downgraded line not readable")
	}
	// But writing again requires an upgrade.
	if s.Access(0, 0x100, true) {
		t.Fatal("write to Shared line hit")
	}
}

func TestSingleCoreReadOnlyMatchesCachesim(t *testing.T) {
	// With one core and no writes, MSI adds nothing: hit/miss behaviour
	// must match the LRU cachesim exactly.
	rng := rand.New(rand.NewSource(9))
	tr := &trace.Trace{Name: "ro"}
	for i := 0; i < 20000; i++ {
		tr.Append(uint64(rng.Intn(4096))*64, uint64(i), false)
	}
	ms, _ := New(1, Config{Sets: 16, Ways: 4})
	ref := cachesim.New(cachesim.Config{Sets: 16, Ways: 4})
	for _, a := range tr.Accesses {
		got := ms.Access(0, a.Addr, false)
		want := ref.Access(a.Addr, false)
		if got != want {
			t.Fatalf("divergence at %#x: msi=%v lru=%v", a.Addr, got, want)
		}
	}
}

func TestRunTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := &trace.Trace{Name: "rt"}
	for i := 0; i < 5000; i++ {
		tr.Append(uint64(rng.Intn(256))*64, uint64(i), rng.Intn(4) == 0)
	}
	s, _ := New(1, Config{Sets: 64, Ways: 8})
	st := s.RunTrace(tr)
	if st.Accesses != 5000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits+misses != accesses: %+v", st)
	}
	if st.HitRate() <= 0.5 {
		t.Fatalf("hit rate = %v for small footprint", st.HitRate())
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
}
