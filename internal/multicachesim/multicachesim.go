// Package multicachesim is a snoopy MSI-coherent multiprocessor cache
// simulator in the spirit of MultiCacheSim (Lucia), the high-throughput
// cache-only simulator the paper compares inference time against in
// Figure 11.
//
// Each core owns a private set-associative cache; caches snoop a shared
// bus. Lines follow the MSI protocol: a write requires Modified state
// (invalidating other copies); a read requires at least Shared state
// (downgrading a remote Modified copy).
package multicachesim

import (
	"fmt"

	"cachebox/internal/trace"
)

// State is an MSI coherence state.
type State uint8

// MSI states.
const (
	Invalid State = iota
	Shared
	Modified
)

// String returns "I", "S" or "M".
func (s State) String() string { return [...]string{"I", "S", "M"}[s] }

// Config describes each private cache.
type Config struct {
	Sets, Ways int
	BlockSize  uint64
}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("multicachesim: sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("multicachesim: ways must be positive, got %d", c.Ways)
	}
	if c.BlockSize != 0 && c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("multicachesim: block size must be a power of two, got %d", c.BlockSize)
	}
	return nil
}

type line struct {
	tag     uint64
	state   State
	lastUse uint64
}

type cache struct {
	sets [][]line
	mask uint64
}

// Stats counts per-core and protocol events.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	Invalidations uint64 // remote copies invalidated by writes
	Downgrades    uint64 // remote M copies downgraded to S by reads
	Upgrades      uint64 // local S->M transitions
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Sim is a snoopy multi-cache simulator.
type Sim struct {
	cfg       Config
	blockBits uint
	caches    []cache
	stats     []Stats
	tick      uint64
}

// New builds a simulator with cores private caches.
func New(cores int, cfg Config) (*Sim, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("multicachesim: cores must be positive, got %d", cores)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64
	}
	s := &Sim{cfg: cfg}
	for bs := cfg.BlockSize; bs > 1; bs >>= 1 {
		s.blockBits++
	}
	for i := 0; i < cores; i++ {
		sets := make([][]line, cfg.Sets)
		for j := range sets {
			sets[j] = make([]line, cfg.Ways)
		}
		s.caches = append(s.caches, cache{sets: sets, mask: uint64(cfg.Sets - 1)})
	}
	s.stats = make([]Stats, cores)
	return s, nil
}

// Cores returns the number of cores.
func (s *Sim) Cores() int { return len(s.caches) }

// Stats returns the counters for core.
func (s *Sim) Stats(core int) Stats { return s.stats[core] }

// find returns the line holding block in core's cache, or nil.
func (s *Sim) find(core int, block uint64) *line {
	c := &s.caches[core]
	set := c.sets[block&c.mask]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

// victim returns the LRU way (or an invalid one) in core's set.
func (s *Sim) victim(core int, block uint64) *line {
	c := &s.caches[core]
	set := c.sets[block&c.mask]
	best := &set[0]
	for i := range set {
		if set[i].state == Invalid {
			return &set[i]
		}
		if set[i].lastUse < best.lastUse {
			best = &set[i]
		}
	}
	return best
}

// Access presents one access from core. Returns whether it hit locally
// in a usable state.
func (s *Sim) Access(core int, addr uint64, write bool) bool {
	s.tick++
	st := &s.stats[core]
	st.Accesses++
	block := addr >> s.blockBits
	ln := s.find(core, block)
	if ln != nil && (ln.state == Modified || !write) {
		// Usable local copy.
		st.Hits++
		ln.lastUse = s.tick
		return true
	}
	if ln != nil && write && ln.state == Shared {
		// Upgrade miss: invalidate remote sharers, go Modified.
		st.Upgrades++
		st.Misses++
		s.snoop(core, block, true)
		ln.state = Modified
		ln.lastUse = s.tick
		return false
	}
	// True miss: snoop, then fill.
	st.Misses++
	s.snoop(core, block, write)
	v := s.victim(core, block)
	v.tag = block
	v.lastUse = s.tick
	if write {
		v.state = Modified
	} else {
		v.state = Shared
	}
	return false
}

// snoop notifies every other cache: writes invalidate remote copies;
// reads downgrade remote Modified copies to Shared.
func (s *Sim) snoop(core int, block uint64, write bool) {
	for i := range s.caches {
		if i == core {
			continue
		}
		ln := s.find(i, block)
		if ln == nil {
			continue
		}
		if write {
			ln.state = Invalid
			s.stats[core].Invalidations++
		} else if ln.state == Modified {
			ln.state = Shared
			s.stats[core].Downgrades++
		}
	}
}

// RunTrace drives core 0 over an entire trace (the single-core
// configuration used for the paper's throughput comparison) and
// returns its stats.
func (s *Sim) RunTrace(t *trace.Trace) Stats {
	for _, a := range t.Accesses {
		s.Access(0, a.Addr, a.Write)
	}
	return s.stats[0]
}
