package cachebox

import (
	"context"
	"fmt"

	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/obs"
	"cachebox/internal/par"
	"cachebox/internal/store"
	"cachebox/internal/stream"
	"cachebox/internal/workload"
)

// Pipeline wires the end-to-end CacheBox workflow: generate a
// benchmark's trace, simulate the cache (hierarchy), build aligned
// access/miss heatmap pairs, and assemble CB-GAN training samples or
// evaluation sets.
type Pipeline struct {
	// Heatmap is the heatmap geometry used throughout.
	Heatmap HeatmapConfig
	// MaxPairsPerBench caps the heatmap pairs taken per benchmark per
	// cache configuration (0 = unlimited).
	MaxPairsPerBench int
	// Store, when non-nil, memoises BenchPairs simulation results in a
	// content-addressed artifact store, so repeat runs skip the
	// simulator.
	Store *Store
	// SplitSeed tags cached artifacts with the train/test split they
	// feed (runs with different splits never share entries).
	SplitSeed int64
	// Workers bounds the parallelism of ground-truth simulation in
	// Dataset, EvaluateAll and TrueHitRates: 0 = runtime.GOMAXPROCS(0),
	// 1 = the serial path. Results are committed in deterministic input
	// order, so output is identical whatever the width.
	Workers int
	// Stream routes BenchPairs (and everything built on it: Dataset,
	// Evaluate, EvaluateAll) through the streaming subsystem
	// (internal/stream): the trace is synthesised, simulated and
	// windowed one heatmap window at a time through a bounded channel
	// pipeline instead of being materialised. Output — including any
	// store artifacts — is byte-identical to the materialised path.
	Stream bool
}

// NewPipeline returns a Pipeline with the default scaled-down heatmap
// geometry.
func NewPipeline() Pipeline {
	return Pipeline{Heatmap: heatmap.DefaultConfig()}
}

// BenchPairs simulates bench against a single cache level and returns
// the aligned heatmap pairs plus the level's true hit rate.
func (p Pipeline) BenchPairs(bench Benchmark, cfg CacheConfig) ([]HeatmapPair, float64, error) {
	return p.benchPairs(context.Background(), bench, cfg)
}

// benchPairs is BenchPairs with an explicit context so worker-pool
// callers thread their par.task span through to the stage spans.
func (p Pipeline) benchPairs(ctx context.Context, bench Benchmark, cfg CacheConfig) ([]HeatmapPair, float64, error) {
	var key store.Key
	if p.Store != nil {
		key = store.PairsKey(bench, cfg, p.Heatmap, p.MaxPairsPerBench, p.SplitSeed)
		if art, err := p.Store.LoadPairs(key); err == nil {
			return art.Pairs, art.HitRate, nil
		}
	}
	var pairs []HeatmapPair
	var hr float64
	if p.Stream {
		// Streamed: one fused pass over the access stream. stream.Run
		// counts the sim run, applies the pair cap at the source, and —
		// without StopEarly — still reports the exact whole-trace hit
		// rate, so the cached artifact below stays byte-identical.
		res, err := stream.Run(ctx, bench, cfg,
			stream.RunConfig{Heatmap: p.Heatmap, MaxWindows: p.MaxPairsPerBench},
			func(w stream.Window) error {
				pairs = append(pairs, w.Pair)
				return nil
			})
		if err != nil {
			return nil, 0, fmt.Errorf("cachebox: %s: %w", bench.Name, err)
		}
		hr = res.HitRate
	} else {
		metrics.SimRuns.Inc()
		_, traceSpan := obs.Start(ctx, "workload.trace")
		traceSpan.Tag("bench", bench.Name)
		tr := bench.Trace()
		traceSpan.End()
		_, simSpan := obs.Start(ctx, "sim.run")
		simSpan.Tag("bench", bench.Name)
		lt := cachesim.RunTrace(cachesim.New(cfg), tr)
		simSpan.End()
		_, pairSpan := obs.Start(ctx, "heatmap.pairs")
		var err error
		pairs, err = heatmap.BuildPair(p.Heatmap, lt.Accesses, lt.Misses)
		pairSpan.End()
		if err != nil {
			return nil, 0, fmt.Errorf("cachebox: %s: %w", bench.Name, err)
		}
		if p.MaxPairsPerBench > 0 && len(pairs) > p.MaxPairsPerBench {
			pairs = pairs[:p.MaxPairsPerBench]
		}
		hr = lt.HitRate()
	}
	if p.Store != nil {
		//lint:ignore unchecked-error cache-fill failure only costs a future re-simulation
		p.Store.SavePairs(key, &store.PairsArtifact{Pairs: pairs, HitRate: hr})
	}
	return pairs, hr, nil
}

// LevelPairs simulates bench against a full hierarchy and returns the
// heatmap pairs and true hit rate of each level. Level i's access
// stream is level i-1's miss stream, as in the paper's RQ4 setup.
func (p Pipeline) LevelPairs(bench Benchmark, cfgs []CacheConfig) ([][]HeatmapPair, []float64, error) {
	h, err := cachesim.NewHierarchy(cfgs...)
	if err != nil {
		return nil, nil, err
	}
	tr := bench.Trace()
	metrics.SimRuns.Inc()
	lts := cachesim.RunHierarchy(h, tr)
	pairs := make([][]HeatmapPair, len(lts))
	rates := make([]float64, len(lts))
	for i, lt := range lts {
		ps, err := heatmap.BuildPair(p.Heatmap, lt.Accesses, lt.Misses)
		if err != nil {
			return nil, nil, fmt.Errorf("cachebox: %s L%d: %w", bench.Name, i+1, err)
		}
		if p.MaxPairsPerBench > 0 && len(ps) > p.MaxPairsPerBench {
			ps = ps[:p.MaxPairsPerBench]
		}
		pairs[i] = ps
		rates[i] = lt.HitRate()
	}
	return pairs, rates, nil
}

// Dataset assembles CB-GAN training samples for every (benchmark,
// cache config) combination, tagging each sample with the cache
// parameters (paper RQ2: one model across configurations). Benchmarks
// whose true hit rate falls below minHitRate are excluded — the
// paper's §6.1 "high data regime" rule; pass 0 to keep everything.
func (p Pipeline) Dataset(benches []Benchmark, cfgs []CacheConfig, minHitRate float64) ([]Sample, error) {
	type item struct {
		cfg   CacheConfig
		bench Benchmark
	}
	var items []item
	for _, cfg := range cfgs {
		for _, b := range benches {
			items = append(items, item{cfg: cfg, bench: b})
		}
	}
	type built struct {
		pairs []HeatmapPair
		hr    float64
	}
	// Simulation fans out across the worker pool; samples are committed
	// in the serial (cfg, bench) order below, so the dataset is
	// identical to a serial build.
	ctx, dsSpan := obs.Start(context.Background(), "pipeline.dataset")
	dsSpan.TagInt("items", len(items))
	defer dsSpan.End()
	res, err := par.Map(ctx, p.Workers, items,
		func(ctx context.Context, _ int, it item) (built, error) {
			pairs, hr, err := p.benchPairs(ctx, it.bench, it.cfg)
			if err != nil {
				return built{}, err
			}
			return built{pairs: pairs, hr: hr}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []Sample
	for i, it := range items {
		if res[i].hr < minHitRate {
			continue
		}
		params := core.CacheParams(it.cfg)
		for _, pr := range res[i].pairs {
			out = append(out, Sample{Access: pr.Access, Miss: pr.Miss, Params: params, Bench: it.bench.Name})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cachebox: dataset is empty (all benchmarks filtered?)")
	}
	return out, nil
}

// DatasetSource builds (or recalls from a warm store) a sharded
// streaming dataset and returns it as a lazily served SampleSource for
// Model.TrainSource, together with its manifest. The dataset is never
// fully materialised: windows stream through a bounded channel into
// content-addressed shards, and training fetches shards per batch. An
// exhaustive build serves the exact sample sequence Dataset returns
// (same order, images, params), so the trained model is byte-identical.
//
// A non-nil sampling config enables representative-interval sampling:
// per-window access signatures are clustered (no simulation), ground
// truth is simulated only for cluster representatives, and the served
// samples carry weights that make the thinned dataset train as a
// population estimate. Requires an attached Store.
func (p Pipeline) DatasetSource(name string, benches []Benchmark, cfgs []CacheConfig, minHitRate float64, smp *SamplingConfig) (SampleSource, *DatasetManifest, error) {
	if p.Store == nil {
		return nil, nil, fmt.Errorf("cachebox: DatasetSource requires a Store")
	}
	man, _, err := stream.Build(context.Background(), p.Store, benches, cfgs, stream.BuildConfig{
		Name:       name,
		Heatmap:    p.Heatmap,
		MaxWindows: p.MaxPairsPerBench,
		MinHitRate: minHitRate,
		Workers:    p.Workers,
		Sampling:   smp,
	})
	if err != nil {
		return nil, nil, err
	}
	ds, err := stream.OpenDataset(p.Store, man)
	if err != nil {
		return nil, nil, err
	}
	if ds.Len() == 0 {
		return nil, nil, fmt.Errorf("cachebox: dataset is empty (all benchmarks filtered?)")
	}
	return ds, man, nil
}

// Eval holds one benchmark's evaluation under one cache configuration.
type Eval struct {
	Bench      string
	Config     CacheConfig
	TrueHit    float64
	PredHit    float64
	AbsPctDiff float64
	Pairs      int
}

// Evaluate predicts bench's miss heatmaps with the model and compares
// the implied hit rate against the simulator's truth (paper §4.4).
func (p Pipeline) Evaluate(m *Model, bench Benchmark, cfg CacheConfig, batchSize int) (Eval, error) {
	pairs, _, err := p.BenchPairs(bench, cfg)
	if err != nil {
		return Eval{}, err
	}
	return p.evaluatePairs(m, bench, cfg, pairs, batchSize)
}

// EvalResult pairs one benchmark's evaluation with its error, so a
// fan-out over many benchmarks can skip individual failures (a trace
// too short for the heatmap geometry) without losing the rest.
type EvalResult struct {
	Eval Eval
	Err  error
}

// EvaluateAll evaluates many benchmarks under one configuration:
// ground-truth simulation fans out across Workers, model prediction
// stays serial (the generator's forward pass is not safe for
// concurrent use on one model), and results return in benchmark order
// regardless of scheduling.
func (p Pipeline) EvaluateAll(m *Model, benches []Benchmark, cfg CacheConfig, batchSize int) []EvalResult {
	type truth struct {
		pairs []HeatmapPair
		err   error
	}
	ctx, evalSpan := obs.Start(context.Background(), "pipeline.evaluate_all")
	evalSpan.TagInt("benches", len(benches))
	defer evalSpan.End()
	truths, mapErr := par.Map(ctx, p.Workers, benches,
		func(ctx context.Context, _ int, b Benchmark) (truth, error) {
			pairs, _, err := p.benchPairs(ctx, b, cfg)
			return truth{pairs: pairs, err: err}, nil
		})
	out := make([]EvalResult, len(benches))
	if mapErr != nil {
		// Only a panicking task can get here; surface it on every row.
		for i := range out {
			out[i] = EvalResult{Err: mapErr}
		}
		return out
	}
	for i, b := range benches {
		if truths[i].err != nil {
			out[i] = EvalResult{Eval: Eval{Bench: b.Name, Config: cfg}, Err: truths[i].err}
			continue
		}
		ev, err := p.evaluatePairs(m, b, cfg, truths[i].pairs, batchSize)
		if err != nil {
			ev.Bench, ev.Config = b.Name, cfg
		}
		out[i] = EvalResult{Eval: ev, Err: err}
	}
	return out
}

// evaluatePairs is Evaluate's serial scoring stage over pre-simulated
// pairs.
func (p Pipeline) evaluatePairs(m *Model, bench Benchmark, cfg CacheConfig, pairs []HeatmapPair, batchSize int) (Eval, error) {
	if len(pairs) == 0 {
		return Eval{}, fmt.Errorf("cachebox: %s yields no heatmaps (trace too short for %dx%d windows)",
			bench.Name, p.Heatmap.Height, p.Heatmap.Width)
	}
	var access, miss []*Heatmap
	for _, pr := range pairs {
		access = append(access, pr.Access)
		miss = append(miss, pr.Miss)
	}
	trueHR, err := heatmap.HitRate(p.Heatmap, access, miss)
	if err != nil {
		return Eval{}, err
	}
	pred := m.Predict(access, core.CacheParams(cfg), batchSize)
	for i := range pred {
		pred[i] = heatmap.ConstrainMiss(pred[i], access[i])
	}
	predHR, err := heatmap.HitRate(p.Heatmap, access, pred)
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		Bench:      bench.Name,
		Config:     cfg,
		TrueHit:    trueHR,
		PredHit:    predHR,
		AbsPctDiff: metrics.AbsPctDiff(trueHR, predHR),
		Pairs:      len(pairs),
	}, nil
}

// TrueHitRates simulates every benchmark once and returns its hit rate
// under cfg (the paper's Figure 14 dataset analysis). Simulation fans
// out across Workers.
func (p Pipeline) TrueHitRates(benches []Benchmark, cfg CacheConfig) map[string]float64 {
	ctx, hrSpan := obs.Start(context.Background(), "pipeline.true_hit_rates")
	hrSpan.TagInt("benches", len(benches))
	defer hrSpan.End()
	rates, err := par.Map(ctx, p.Workers, benches,
		func(ctx context.Context, _ int, b Benchmark) (float64, error) {
			metrics.SimRuns.Inc()
			_, simSpan := obs.Start(ctx, "sim.run")
			simSpan.Tag("bench", b.Name)
			lt := cachesim.RunTrace(cachesim.New(cfg), b.Trace())
			simSpan.End()
			return lt.HitRate(), nil
		})
	out := make(map[string]float64, len(benches))
	if err != nil {
		return out
	}
	for i, b := range benches {
		out[b.Name] = rates[i]
	}
	return out
}

// AllSuites builds the three suite families at the given per-benchmark
// access budget and size scale, mirroring the paper's SPEC + Ligra +
// Polybench dataset.
func AllSuites(specGroups, specPhases, ops int, sizeScale float64) []Suite {
	return []Suite{
		workload.SpecLike(specGroups, specPhases, ops),
		workload.LigraLike(ops, sizeScale),
		workload.PolyLike(ops, sizeScale),
	}
}

// FlattenSuites concatenates suites' benchmarks.
func FlattenSuites(suites []Suite) []Benchmark {
	var out []Benchmark
	for _, s := range suites {
		out = append(out, s.Benchmarks...)
	}
	return out
}
