package cachebox

import (
	"fmt"

	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/store"
	"cachebox/internal/workload"
)

// Pipeline wires the end-to-end CacheBox workflow: generate a
// benchmark's trace, simulate the cache (hierarchy), build aligned
// access/miss heatmap pairs, and assemble CB-GAN training samples or
// evaluation sets.
type Pipeline struct {
	// Heatmap is the heatmap geometry used throughout.
	Heatmap HeatmapConfig
	// MaxPairsPerBench caps the heatmap pairs taken per benchmark per
	// cache configuration (0 = unlimited).
	MaxPairsPerBench int
	// Store, when non-nil, memoises BenchPairs simulation results in a
	// content-addressed artifact store, so repeat runs skip the
	// simulator.
	Store *Store
	// SplitSeed tags cached artifacts with the train/test split they
	// feed (runs with different splits never share entries).
	SplitSeed int64
}

// NewPipeline returns a Pipeline with the default scaled-down heatmap
// geometry.
func NewPipeline() Pipeline {
	return Pipeline{Heatmap: heatmap.DefaultConfig()}
}

// BenchPairs simulates bench against a single cache level and returns
// the aligned heatmap pairs plus the level's true hit rate.
func (p Pipeline) BenchPairs(bench Benchmark, cfg CacheConfig) ([]HeatmapPair, float64, error) {
	var key store.Key
	if p.Store != nil {
		key = store.PairsKey(bench, cfg, p.Heatmap, p.MaxPairsPerBench, p.SplitSeed)
		if art, err := p.Store.LoadPairs(key); err == nil {
			return art.Pairs, art.HitRate, nil
		}
	}
	metrics.SimRuns.Inc()
	tr := bench.Trace()
	lt := cachesim.RunTrace(cachesim.New(cfg), tr)
	pairs, err := heatmap.BuildPair(p.Heatmap, lt.Accesses, lt.Misses)
	if err != nil {
		return nil, 0, fmt.Errorf("cachebox: %s: %w", bench.Name, err)
	}
	if p.MaxPairsPerBench > 0 && len(pairs) > p.MaxPairsPerBench {
		pairs = pairs[:p.MaxPairsPerBench]
	}
	if p.Store != nil {
		//lint:ignore unchecked-error cache-fill failure only costs a future re-simulation
		p.Store.SavePairs(key, &store.PairsArtifact{Pairs: pairs, HitRate: lt.HitRate()})
	}
	return pairs, lt.HitRate(), nil
}

// LevelPairs simulates bench against a full hierarchy and returns the
// heatmap pairs and true hit rate of each level. Level i's access
// stream is level i-1's miss stream, as in the paper's RQ4 setup.
func (p Pipeline) LevelPairs(bench Benchmark, cfgs []CacheConfig) ([][]HeatmapPair, []float64, error) {
	h, err := cachesim.NewHierarchy(cfgs...)
	if err != nil {
		return nil, nil, err
	}
	tr := bench.Trace()
	metrics.SimRuns.Inc()
	lts := cachesim.RunHierarchy(h, tr)
	pairs := make([][]HeatmapPair, len(lts))
	rates := make([]float64, len(lts))
	for i, lt := range lts {
		ps, err := heatmap.BuildPair(p.Heatmap, lt.Accesses, lt.Misses)
		if err != nil {
			return nil, nil, fmt.Errorf("cachebox: %s L%d: %w", bench.Name, i+1, err)
		}
		if p.MaxPairsPerBench > 0 && len(ps) > p.MaxPairsPerBench {
			ps = ps[:p.MaxPairsPerBench]
		}
		pairs[i] = ps
		rates[i] = lt.HitRate()
	}
	return pairs, rates, nil
}

// Dataset assembles CB-GAN training samples for every (benchmark,
// cache config) combination, tagging each sample with the cache
// parameters (paper RQ2: one model across configurations). Benchmarks
// whose true hit rate falls below minHitRate are excluded — the
// paper's §6.1 "high data regime" rule; pass 0 to keep everything.
func (p Pipeline) Dataset(benches []Benchmark, cfgs []CacheConfig, minHitRate float64) ([]Sample, error) {
	var out []Sample
	for _, cfg := range cfgs {
		params := core.CacheParams(cfg)
		for _, b := range benches {
			pairs, hr, err := p.BenchPairs(b, cfg)
			if err != nil {
				return nil, err
			}
			if hr < minHitRate {
				continue
			}
			for _, pr := range pairs {
				out = append(out, Sample{Access: pr.Access, Miss: pr.Miss, Params: params, Bench: b.Name})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cachebox: dataset is empty (all benchmarks filtered?)")
	}
	return out, nil
}

// Eval holds one benchmark's evaluation under one cache configuration.
type Eval struct {
	Bench      string
	Config     CacheConfig
	TrueHit    float64
	PredHit    float64
	AbsPctDiff float64
	Pairs      int
}

// Evaluate predicts bench's miss heatmaps with the model and compares
// the implied hit rate against the simulator's truth (paper §4.4).
func (p Pipeline) Evaluate(m *Model, bench Benchmark, cfg CacheConfig, batchSize int) (Eval, error) {
	pairs, _, err := p.BenchPairs(bench, cfg)
	if err != nil {
		return Eval{}, err
	}
	if len(pairs) == 0 {
		return Eval{}, fmt.Errorf("cachebox: %s yields no heatmaps (trace too short for %dx%d windows)",
			bench.Name, p.Heatmap.Height, p.Heatmap.Width)
	}
	var access, miss []*Heatmap
	for _, pr := range pairs {
		access = append(access, pr.Access)
		miss = append(miss, pr.Miss)
	}
	trueHR, err := heatmap.HitRate(p.Heatmap, access, miss)
	if err != nil {
		return Eval{}, err
	}
	pred := m.Predict(access, core.CacheParams(cfg), batchSize)
	for i := range pred {
		pred[i] = heatmap.ConstrainMiss(pred[i], access[i])
	}
	predHR, err := heatmap.HitRate(p.Heatmap, access, pred)
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		Bench:      bench.Name,
		Config:     cfg,
		TrueHit:    trueHR,
		PredHit:    predHR,
		AbsPctDiff: metrics.AbsPctDiff(trueHR, predHR),
		Pairs:      len(pairs),
	}, nil
}

// TrueHitRates simulates every benchmark once and returns its hit rate
// under cfg (the paper's Figure 14 dataset analysis).
func (p Pipeline) TrueHitRates(benches []Benchmark, cfg CacheConfig) map[string]float64 {
	out := make(map[string]float64, len(benches))
	for _, b := range benches {
		metrics.SimRuns.Inc()
		lt := cachesim.RunTrace(cachesim.New(cfg), b.Trace())
		out[b.Name] = lt.HitRate()
	}
	return out
}

// AllSuites builds the three suite families at the given per-benchmark
// access budget and size scale, mirroring the paper's SPEC + Ligra +
// Polybench dataset.
func AllSuites(specGroups, specPhases, ops int, sizeScale float64) []Suite {
	return []Suite{
		workload.SpecLike(specGroups, specPhases, ops),
		workload.LigraLike(ops, sizeScale),
		workload.PolyLike(ops, sizeScale),
	}
}

// FlattenSuites concatenates suites' benchmarks.
func FlattenSuites(suites []Suite) []Benchmark {
	var out []Benchmark
	for _, s := range suites {
		out = append(out, s.Benchmarks...)
	}
	return out
}
