#!/usr/bin/env bash
# bench_pr9.sh — measure the blocked GEMM rewrite and the int8 inference
# path, and produce BENCH_PR9.json.
#
# Three measurements:
#
#  1. Kernel microbenchmarks (512x512x512): naive gemmRef vs the
#     cache-blocked kernel single-threaded (the ≥2x gate), the blocked
#     kernel through Gemm's worker fan-out, and the int8 gemmQ8.
#
#  2. Batched inference throughput: the same window set predicted
#     through the float32 path and the -quantize int8 path, in
#     windows/s (the serving headline).
#
#  3. fig11 (RQ5) at tiny scale: CB-GAN inference time vs batch size
#     and the MultiCacheSim wall-clock comparison, through the real
#     experiment harness.
#
#   scripts/bench_pr9.sh [out.json]
#
# Environment knobs: BENCHTIME (default 200ms), BENCHCOUNT (default 3 —
# the JSON records the best of BENCHCOUNT runs per benchmark).
set -euo pipefail

OUT="${1:-BENCH_PR9.json}"
BENCHTIME="${BENCHTIME:-200ms}"
BENCHCOUNT="${BENCHCOUNT:-3}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== GEMM kernel microbenchmarks (512x512x512, best of $BENCHCOUNT x $BENCHTIME) =="
go test -run='^$' -bench='Gemm(Ref|Blocked|BlockedParallel|Q8_)512' \
  -benchtime="$BENCHTIME" -count="$BENCHCOUNT" ./internal/tensor/ | tee "$WORK/gemm.txt"

echo "== batched inference: float32 vs int8 (windows/s) =="
go test -run='^$' -bench='Predict(Float32|Quantized)' \
  -benchtime="$BENCHTIME" -count="$BENCHCOUNT" ./internal/core/ | tee "$WORK/predict.txt"

echo "== fig11 (tiny): CB-GAN batched inference vs MultiCacheSim =="
go run ./cmd/cbx-experiments -scale tiny -run fig11 \
  -artifacts "$WORK/art" -store "$WORK/store" -j 4 | tee "$WORK/fig11.txt"

python3 - "$OUT" "$WORK/gemm.txt" "$WORK/predict.txt" "$WORK/fig11.txt" <<'EOF'
import json, os, platform, re, sys

out, gemm_txt, predict_txt, fig11_txt = sys.argv[1:5]

def best_metric(path):
    """Parse `go test -bench` output -> {name: max metric across -count runs}."""
    runs = {}
    pat = re.compile(r"^Benchmark(\w+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+([\d.]+) (\S+)")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                name, val, unit = m.group(1), float(m.group(2)), m.group(3)
                cur = runs.get(name)
                if cur is None or val > cur[0]:
                    runs[name] = (val, unit)
    return runs

gemm = best_metric(gemm_txt)
pred = best_metric(predict_txt)

ref = gemm["GemmRef512"][0]
blocked = gemm["GemmBlocked512"][0]
speedup = blocked / ref
assert speedup >= 2, f"blocked kernel only {speedup:.2f}x over gemmRef ({blocked:.2f} vs {ref:.2f} GFLOP/s)"

fig = open(fig11_txt).read()
batches = re.findall(r"batch\s+(\d+):\s+[\d.]+s \(([\d.]+) heatmaps/s\)", fig)
speed32 = re.search(r"batch-32 speedup over batch-1: ([\d.]+)x", fig)
mcs = re.search(r"MultiCacheSim: ([\d.]+)s; sequential CBox vs MCS: ([\d.]+)x", fig)
assert batches and speed32 and mcs, "fig11 output missing expected lines"

doc = {
    "description": "Cache-blocked GEMM rewrite (internal/tensor): 512^3 kernel "
                   "microbenchmarks (naive ref vs blocked vs worker fan-out vs int8), "
                   "float32-vs-int8 batched predict throughput, and tiny fig11 "
                   "(RQ5) vs MultiCacheSim. Reproduce with: scripts/bench_pr9.sh",
    "goos": "linux",
    "machine": platform.machine(),
    "nproc": os.cpu_count(),
    "gemm_512": {
        "ref_gflops": ref,
        "blocked_1thread_gflops": blocked,
        "blocked_parallel_gflops": gemm["GemmBlockedParallel512"][0],
        "q8_1thread_gops": gemm["GemmQ8_512"][0],
        "blocked_vs_ref_speedup": round(speedup, 2),
    },
    "predict_throughput": {
        "float32_windows_per_s": pred["PredictFloat32"][0],
        "quantized_windows_per_s": pred["PredictQuantized"][0],
        "note": "tiny 16x16 model: per-batch activation quantization overhead "
                "dominates tiny GEMMs; the int8 win grows with layer size",
    },
    "fig11_tiny": {
        "heatmaps_per_s_by_batch": {b: float(v) for b, v in batches},
        "batch32_speedup": float(speed32.group(1)),
        "mcs_seconds": float(mcs.group(1)),
        "cbox_vs_mcs": float(mcs.group(2)),
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: blocked kernel {speedup:.2f}x over gemmRef "
      f"({blocked:.2f} vs {ref:.2f} GFLOP/s)")
EOF
