#!/usr/bin/env bash
# bench_pr10.sh — measure the data-parallel training path introduced
# with cbx-traind, and produce BENCH_PR10.json.
#
# Two measurements:
#
#  1. Epoch throughput (samples/s): the serial training loop vs the
#     sharded trainer (Shards=4) at -j 1 and -j 4. The ≥1.5x
#     serial-vs-sharded gate only arms on hosts with ≥4 cores — on
#     fewer cores the sharded path pays its deterministic fan-out and
#     ordered-reduction overhead with nothing to parallelise against,
#     and the JSON records that honestly instead.
#
#  2. fig7 (RQ1) and fig8 (RQ2) at tiny scale through the real
#     experiment harness, so the JSON carries the accuracy the
#     training rewrite ships with (average |pred-true| hit-rate
#     error per figure).
#
#   scripts/bench_pr10.sh [out.json]
#
# Environment knobs: BENCHTIME (default 200ms), BENCHCOUNT (default 3 —
# the JSON records the best of BENCHCOUNT runs per benchmark).
set -euo pipefail

OUT="${1:-BENCH_PR10.json}"
BENCHTIME="${BENCHTIME:-200ms}"
BENCHCOUNT="${BENCHCOUNT:-3}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== training epoch throughput: serial vs sharded (best of $BENCHCOUNT x $BENCHTIME) =="
go test -run='^$' -bench='TrainEpoch(Serial|Sharded4J1|Sharded4J4)' \
  -benchtime="$BENCHTIME" -count="$BENCHCOUNT" ./internal/core/ | tee "$WORK/train.txt"

echo "== fig7 + fig8 (tiny): accuracy shipped by the new training path =="
go run ./cmd/cbx-experiments -scale tiny -run fig7,fig8 \
  -artifacts "$WORK/art" -store "$WORK/store" -j 4 | tee "$WORK/figs.txt"

python3 - "$OUT" "$WORK/train.txt" "$WORK/figs.txt" <<'EOF'
import json, os, platform, re, sys

out, train_txt, figs_txt = sys.argv[1:4]

def best_metric(path):
    """Parse `go test -bench` output -> {name: max metric across -count runs}."""
    runs = {}
    pat = re.compile(r"^Benchmark(\w+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+([\d.]+) (\S+)")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                name, val, unit = m.group(1), float(m.group(2)), m.group(3)
                cur = runs.get(name)
                if cur is None or val > cur[0]:
                    runs[name] = (val, unit)
    return runs

train = best_metric(train_txt)
serial = train["TrainEpochSerial"][0]
sharded_j1 = train["TrainEpochSharded4J1"][0]
sharded_j4 = train["TrainEpochSharded4J4"][0]
speedup = sharded_j4 / serial

nproc = os.cpu_count() or 1
if nproc >= 4:
    assert speedup >= 1.5, (
        f"sharded -j4 only {speedup:.2f}x over serial on {nproc} cores "
        f"({sharded_j4:.0f} vs {serial:.0f} samples/s)")
    note = f"gate armed: {nproc} cores, sharded -j4 is {speedup:.2f}x serial"
else:
    note = (f"gate disarmed: host has {nproc} core(s); shards=4 pays its "
            "fan-out and ordered-reduction overhead with no cores to "
            "parallelise against, so sharded < serial here is expected")

figs = open(figs_txt).read()
avgs = re.findall(
    r"average absolute percentage difference: ([\d.]+)% over (\d+) benchmarks", figs)
fig8_cfgs = re.findall(r"Figure 8 \(RQ2\): one model, four L1 configurations — (\S+)", figs)
assert len(avgs) >= 2, "expected fig7 + fig8 average lines in experiment output"
fig7_avg = float(avgs[0][0])
fig8_avgs = [float(a) for a, _ in avgs[1:]]

doc = {
    "description": "Data-parallel training service (cbx-traind) PR: serial vs "
                   "sharded (Shards=4) epoch throughput at -j1/-j4, plus tiny "
                   "fig7 (RQ1) and fig8 (RQ2) accuracy through the versioned "
                   "TrainConfig path. Reproduce with: scripts/bench_pr10.sh",
    "goos": "linux",
    "machine": platform.machine(),
    "nproc": nproc,
    "train_epoch_throughput": {
        "serial_samples_per_s": serial,
        "sharded4_j1_samples_per_s": sharded_j1,
        "sharded4_j4_samples_per_s": sharded_j4,
        "sharded_j4_vs_serial_speedup": round(speedup, 2),
        "note": note,
    },
    "accuracy_tiny": {
        "fig7_avg_abs_pct_error": fig7_avg,
        "fig8_avg_abs_pct_error_by_config": dict(zip(fig8_cfgs, fig8_avgs)),
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: sharded -j4 {speedup:.2f}x serial on {nproc} core(s); "
      f"fig7 avg {fig7_avg:.2f}%")
EOF
