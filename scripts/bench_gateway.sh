#!/usr/bin/env bash
# bench_gateway.sh — measure cbx-gateway latency/throughput vs replica
# count and produce BENCH_PR7.json.
#
# For each replica count in REPLICA_COUNTS (default "1 2 4"): train (or
# reuse) a tiny model, publish it into a content-addressed store, start
# the replicas from that store, front them with cbx-gateway, drive the
# fleet with cbx-loadgen, and record p50/p99 latency, achieved QPS and
# the hedge-fire rate.
#
#   scripts/bench_gateway.sh [out.json]
#
# Environment knobs: DURATION (default 8s), QPS (default 0 = unpaced),
# CONCURRENCY (default 8), REPLICA_COUNTS (default "1 2 4").
set -euo pipefail

OUT="${1:-BENCH_PR7.json}"
DURATION="${DURATION:-8s}"
QPS="${QPS:-0}"
CONCURRENCY="${CONCURRENCY:-8}"
REPLICA_COUNTS="${REPLICA_COUNTS:-1 2 4}"

WORK="$(mktemp -d)"
BIN="$WORK/bin"
STORE="$WORK/store"
mkdir -p "$BIN"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$BIN/cachebox" ./cmd/cachebox
go build -o "$BIN/cbx-store" ./cmd/cbx-store
go build -o "$BIN/cbx-serve" ./cmd/cbx-serve
go build -o "$BIN/cbx-gateway" ./cmd/cbx-gateway
go build -o "$BIN/cbx-loadgen" ./cmd/cbx-loadgen

echo "== training tiny model"
"$BIN/cachebox" train -tiny -epochs 1 -ops 4000 -max-benches 4 \
  -cache 64set-12way -save-model "$WORK/tiny.cbgan" >/dev/null
"$BIN/cbx-store" -root "$STORE" put -kind model -input name=tiny "$WORK/tiny.cbgan"

wait_healthy() {
  local url="$1" tries=100
  until curl -sf "$url/healthz" >/dev/null 2>&1; do
    tries=$((tries - 1))
    [ "$tries" -gt 0 ] || { echo "FATAL: $url never became healthy" >&2; exit 1; }
    sleep 0.1
  done
}

RESULTS=()
for n in $REPLICA_COUNTS; do
  echo "== $n replica(s)"
  urls=""
  fleet_pids=()
  for i in $(seq 1 "$n"); do
    port=$((9400 + i))
    "$BIN/cbx-serve" -store "$STORE" -addr "127.0.0.1:$port" >"$WORK/serve-$n-$i.log" 2>&1 &
    fleet_pids+=($!)
    PIDS+=($!)
    urls="${urls:+$urls,}http://127.0.0.1:$port"
  done
  for i in $(seq 1 "$n"); do
    wait_healthy "http://127.0.0.1:$((9400 + i))"
  done

  "$BIN/cbx-gateway" -addr 127.0.0.1:9390 -replicas "$urls" \
    -health-interval 200ms -hedge-min 1ms >"$WORK/gateway-$n.log" 2>&1 &
  gw_pid=$!
  PIDS+=("$gw_pid")
  wait_healthy "http://127.0.0.1:9390"

  "$BIN/cbx-loadgen" -url http://127.0.0.1:9390 -duration "$DURATION" \
    -qps "$QPS" -concurrency "$CONCURRENCY" -conditions 64:12,128:8,256:4 \
    -zipf-s 1.2 -seed 7 -scrape -replicas "$n" -out "$WORK/bench-$n.json"
  RESULTS+=("$WORK/bench-$n.json")

  kill "$gw_pid" "${fleet_pids[@]}" 2>/dev/null || true
  wait "$gw_pid" "${fleet_pids[@]}" 2>/dev/null || true
done

echo "== assembling $OUT"
python3 - "$OUT" "${RESULTS[@]}" <<'EOF'
import json, platform, subprocess, sys, datetime

out, paths = sys.argv[1], sys.argv[2:]
runs = [json.load(open(p)) for p in paths]

def hedge_rate(r):
    g = r.get("gateway_counters") or {}
    fired = g.get('cachebox_gateway_hedges_total{event="fired"}', 0.0)
    return fired / r["requests"] if r["requests"] else 0.0

doc = {
    "description": (
        "cbx-gateway fronting N cbx-serve replicas (tiny model, content-addressed store): "
        "closed-loop cbx-loadgen, Zipf-skewed (model, condition) mix over 3 cache geometries. "
        "Reproduce with: scripts/bench_gateway.sh"
    ),
    "date": datetime.date.today().isoformat(),
    "goos": sys.platform,
    "machine": platform.machine(),
    "nproc": int(subprocess.run(["nproc"], capture_output=True, text=True).stdout.strip() or 1),
    "note": (
        "Single-process-per-tier measurement; on a single-CPU container the replicas, "
        "gateway and load generator contend for one core, so scaling with replica count "
        "reflects scheduling overhead rather than parallel speedup there. The hedge-fire "
        "rate is the fraction of proxied requests that outlived the adaptive p95 budget."
    ),
    "benchmarks": [
        {
            "name": f"GatewayPredict/replicas={r['replicas']}",
            "requests": r["requests"],
            "achieved_qps": round(r["achieved_qps"], 1),
            "p50_ms": r["latency_ms"]["p50"],
            "p99_ms": r["latency_ms"]["p99"],
            "max_ms": r["latency_ms"]["max"],
            "by_status": r["by_status"],
            "hedge_fire_rate": round(hedge_rate(r), 4),
            "gateway_counters": r.get("gateway_counters") or {},
        }
        for r in runs
    ],
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF

cat "$OUT"
