#!/usr/bin/env bash
# bench_pr8.sh — measure the streaming dataset subsystem and produce
# BENCH_PR8.json.
#
# Two measurements:
#
#  1. Sampling savings: build the same benchmark × cache sweep twice —
#     exhaustively and with representative-interval sampling — into
#     fresh stores, and compare the per-process sim_runs counters each
#     build prints. Same suites, same -max-windows: the window
#     population the plan clusters is exactly the population the full
#     build simulates.
#
#  2. Streamed-vs-materialised equivalence: run tiny fig7 three times
#     (materialised -j4, streamed -j1, streamed -j8) into fresh
#     artifact dirs/stores and require the trained model artifacts to
#     be byte-identical.
#
#   scripts/bench_pr8.sh [out.json]
#
# Environment knobs: NGROUPS (default 8), PHASES (default 2), OPS
# (default 20000), MAXWIN (default 40), SAMPLE_K (default 4).
set -euo pipefail

OUT="${1:-BENCH_PR8.json}"
NGROUPS="${NGROUPS:-8}"
PHASES="${PHASES:-2}"
OPS="${OPS:-20000}"
MAXWIN="${MAXWIN:-40}"
SAMPLE_K="${SAMPLE_K:-4}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/cbx-dataset" ./cmd/cbx-dataset
go build -o "$WORK/cbx-experiments" ./cmd/cbx-experiments

build() { # build <store> <name> [extra flags...]
  local root="$1" name="$2"
  shift 2
  "$WORK/cbx-dataset" -root "$root" build -name "$name" \
    -suites spec,zipf -groups "$NGROUPS" -phases "$PHASES" -ops "$OPS" \
    -cache 64x12,128x6 -heatmap 16x16 -window 150 \
    -max-windows "$MAXWIN" -j 4 "$@"
}

sim_runs() { grep -o 'sim_runs=[0-9]*' <<<"$1" | head -1 | cut -d= -f2; }
stream_windows() { grep -o 'stream_windows=[0-9]*' <<<"$1" | head -1 | cut -d= -f2; }

echo "== full build =="
FULL_OUT="$(build "$WORK/full" full)"
echo "$FULL_OUT"
echo "== sampled build (k=$SAMPLE_K) =="
SAMP_OUT="$(build "$WORK/samp" sampled -sample -sample-k "$SAMPLE_K" -sample-seed 1)"
echo "$SAMP_OUT"

FULL_SIMS="$(sim_runs "$FULL_OUT")"
SAMP_SIMS="$(sim_runs "$SAMP_OUT")"
FULL_WINS="$(stream_windows "$FULL_OUT")"
SAMP_WINS="$(stream_windows "$SAMP_OUT")"

echo "== fig7 equivalence (materialised -j4 vs streamed -j1/-j8) =="
T0=$SECONDS
"$WORK/cbx-experiments" -scale tiny -run fig7 -artifacts "$WORK/mat" -store "$WORK/mat-store" -j 4 >/dev/null
MAT_SECS=$((SECONDS - T0))
T0=$SECONDS
"$WORK/cbx-experiments" -scale tiny -run fig7 -stream -artifacts "$WORK/s1" -store "$WORK/s1-store" -j 1 >/dev/null
S1_SECS=$((SECONDS - T0))
T0=$SECONDS
"$WORK/cbx-experiments" -scale tiny -run fig7 -stream -artifacts "$WORK/s8" -store "$WORK/s8-store" -j 8 >/dev/null
S8_SECS=$((SECONDS - T0))
cmp "$WORK/mat/tiny-fig7-rq1-mixed.cbgan" "$WORK/s1/tiny-fig7-rq1-mixed.cbgan"
cmp "$WORK/mat/tiny-fig7-rq1-mixed.cbgan" "$WORK/s8/tiny-fig7-rq1-mixed.cbgan"
MODEL_SHA="$(sha256sum "$WORK/mat/tiny-fig7-rq1-mixed.cbgan" | cut -d' ' -f1)"
echo "fig7 model artifacts byte-identical ($MODEL_SHA)"

python3 - "$OUT" <<EOF
import json, sys, platform, os, datetime
full_sims, samp_sims = $FULL_SIMS, $SAMP_SIMS
full_wins, samp_wins = $FULL_WINS, $SAMP_WINS
ratio = full_sims / samp_sims
assert ratio >= 3, f"sampling saved only {ratio:.2f}x sim runs"
doc = {
    "description": "Streaming dataset subsystem (internal/stream + internal/sampling): "
                   "exhaustive vs representative-sampled build of the same "
                   "spec+zipf x {64x12,128x6} sweep, and tiny fig7 streamed-vs-"
                   "materialised artifact equivalence. Reproduce with: scripts/bench_pr8.sh",
    "date": datetime.date.today().isoformat(),
    "goos": "linux",
    "machine": platform.machine(),
    "nproc": os.cpu_count(),
    "sampling_savings": {
        "suites": "spec,zipf", "groups": $NGROUPS, "phases": $PHASES,
        "ops": $OPS, "caches": ["64x12", "128x6"], "max_windows": $MAXWIN,
        "sample_k": $SAMPLE_K,
        "full_sim_runs": full_sims,
        "sampled_sim_runs": samp_sims,
        "sim_run_savings_ratio": round(ratio, 2),
        "full_windows_simulated": full_wins,
        "sampled_windows_simulated": samp_wins,
        "window_savings_ratio": round(full_wins / samp_wins, 2),
    },
    "stream_equivalence": {
        "experiment": "tiny fig7",
        "model_sha256": "$MODEL_SHA",
        "byte_identical": ["materialised -j4", "streamed -j1", "streamed -j8"],
        "materialised_j4_seconds": $MAT_SECS,
        "streamed_j1_seconds": $S1_SECS,
        "streamed_j8_seconds": $S8_SECS,
    },
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[1]}: {ratio:.2f}x fewer sim runs, "
      f"{full_wins}/{samp_wins} windows simulated")
EOF
