package cachebox_test

import (
	"fmt"

	"cachebox"
)

// ExampleSpecLike shows benchmark suite construction: suites are
// deterministic generators, so no trace files are needed.
func ExampleSpecLike() {
	suite := cachebox.SpecLike(2, 2, 1000)
	for _, b := range suite.Benchmarks {
		fmt.Println(b.Name, b.Group)
	}
	// Output:
	// spec/600.xzish-400B spec/600.xzish
	// spec/600.xzish-573B spec/600.xzish
	// spec/601.lbmish-400B spec/601.lbmish
	// spec/601.lbmish-573B spec/601.lbmish
}

// ExampleRunTrace shows ground-truth simulation: a trace driven
// through a 64set-12way L1 yields the paired access/miss streams the
// heatmap pipeline consumes.
func ExampleRunTrace() {
	suite := cachebox.PolyLike(20000, 0.3)
	bench := suite.Benchmarks[0]
	lt := cachebox.RunTrace(cachebox.NewCache(cachebox.CacheConfig{Sets: 64, Ways: 12}), bench.Trace())
	fmt.Printf("accesses=%d misses=%d\n", lt.Accesses.Len(), lt.Misses.Len())
	fmt.Printf("hit rate above 90%%: %v\n", lt.HitRate() > 0.9)
	// Output:
	// accesses=20000 misses=303
	// hit rate above 90%: true
}

// ExampleBuildHeatmapPairs shows the heatmap pipeline: aligned
// access/miss pairs with 30% overlap, whose pixel sums recover the
// hit rate.
func ExampleBuildHeatmapPairs() {
	suite := cachebox.PolyLike(60000, 0.3)
	lt := cachebox.RunTrace(cachebox.NewCache(cachebox.CacheConfig{Sets: 64, Ways: 12}),
		suite.Benchmarks[0].Trace())
	cfg := cachebox.DefaultHeatmapConfig()
	pairs, err := cachebox.BuildHeatmapPairs(cfg, lt.Accesses, lt.Misses)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("pairs: %v, image %dx%d, overlap %d columns\n",
		len(pairs) > 0, cfg.Height, cfg.Width, cfg.OverlapCols())
	// Output:
	// pairs: true, image 32x32, overlap 10 columns
}

// ExampleCacheParams shows the conditioning inputs the generator's
// dense path receives (paper §3.2.3).
func ExampleCacheParams() {
	p := cachebox.CacheParams(cachebox.CacheConfig{Sets: 64, Ways: 12})
	fmt.Printf("%.4f\n", p)
	// Output:
	// [0.3750 0.4481]
}
