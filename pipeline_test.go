package cachebox

import (
	"math"
	"testing"
)

func tinyPipe() Pipeline {
	p := NewPipeline()
	p.Heatmap.Height, p.Heatmap.Width = 16, 16
	p.Heatmap.WindowInstr = 150
	p.MaxPairsPerBench = 5
	return p
}

func TestPipelineBenchPairs(t *testing.T) {
	p := tinyPipe()
	suite := SpecLike(2, 1, 20000)
	pairs, hr, err := p.BenchPairs(suite.Benchmarks[0], CacheConfig{Sets: 64, Ways: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || len(pairs) > 5 {
		t.Fatalf("pairs = %d, want 1..5", len(pairs))
	}
	if hr <= 0 || hr > 1 {
		t.Fatalf("hit rate %v", hr)
	}
	for _, pr := range pairs {
		if pr.Access.H != 16 || pr.Miss.W != 16 {
			t.Fatalf("pair size %dx%d", pr.Access.H, pr.Miss.W)
		}
	}
}

func TestPipelineLevelPairs(t *testing.T) {
	p := tinyPipe()
	suite := SpecLike(2, 1, 30000)
	cfgs := []CacheConfig{{Sets: 16, Ways: 4}, {Sets: 64, Ways: 8}}
	pairs, rates, err := p.LevelPairs(suite.Benchmarks[0], cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || len(rates) != 2 {
		t.Fatalf("levels %d/%d", len(pairs), len(rates))
	}
	if rates[0] <= 0 {
		t.Fatalf("L1 rate %v", rates[0])
	}
}

func TestPipelineDatasetFiltersAndTags(t *testing.T) {
	p := tinyPipe()
	suite := SpecLike(4, 1, 20000)
	cfg := CacheConfig{Sets: 64, Ways: 12}
	ds, err := p.Dataset(suite.Benchmarks, []CacheConfig{cfg}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("empty dataset")
	}
	want := CacheParams(cfg)
	for _, s := range ds {
		if s.Bench == "" {
			t.Fatal("sample missing bench tag")
		}
		if len(s.Params) != 2 || s.Params[0] != want[0] {
			t.Fatalf("sample params %v", s.Params)
		}
	}
	// An impossible threshold must error out rather than return an
	// empty dataset.
	if _, err := p.Dataset(suite.Benchmarks, []CacheConfig{cfg}, 1.1); err == nil {
		t.Fatal("impossible threshold accepted")
	}
}

func TestPipelineEvaluateAgainstTruth(t *testing.T) {
	p := tinyPipe()
	suite := SpecLike(3, 1, 20000)
	cfg := CacheConfig{Sets: 64, Ways: 12}
	ds, err := p.Dataset(suite.Benchmarks[:2], []CacheConfig{cfg}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc := DefaultModelConfig()
	mc.ImageSize = 16
	mc.NGF, mc.NDF = 4, 4
	m, err := NewModel(mc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(ds, TrainConfig{Epochs: 1, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Evaluate(m, suite.Benchmarks[2], cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TrueHit <= 0 || ev.TrueHit > 1 || ev.PredHit < 0 || ev.PredHit > 1 {
		t.Fatalf("eval %+v", ev)
	}
	if math.Abs(ev.AbsPctDiff-AbsPctDiff(ev.TrueHit, ev.PredHit)) > 1e-9 {
		t.Fatal("AbsPctDiff inconsistent")
	}
	if ev.Pairs == 0 {
		t.Fatal("no pairs recorded")
	}
}

func TestPipelineTrueHitRates(t *testing.T) {
	p := tinyPipe()
	suite := SpecLike(3, 1, 10000)
	rates := p.TrueHitRates(suite.Benchmarks, CacheConfig{Sets: 64, Ways: 12})
	if len(rates) != len(suite.Benchmarks) {
		t.Fatalf("rates for %d of %d", len(rates), len(suite.Benchmarks))
	}
	for name, r := range rates {
		if r < 0 || r > 1 {
			t.Fatalf("%s rate %v", name, r)
		}
	}
}

func TestAllSuitesAndFlatten(t *testing.T) {
	suites := AllSuites(3, 2, 1000, 0.2)
	if len(suites) != 3 {
		t.Fatalf("suites = %d", len(suites))
	}
	all := FlattenSuites(suites)
	want := 0
	for _, s := range suites {
		want += len(s.Benchmarks)
	}
	if len(all) != want {
		t.Fatalf("flattened %d, want %d", len(all), want)
	}
}

func TestFacadeReExports(t *testing.T) {
	// Compile-time API checks plus a couple of runtime sanity calls.
	if DefaultHeatmapConfig().Validate() != nil {
		t.Fatal("default heatmap config invalid")
	}
	if DefaultModelConfig().Validate() != nil {
		t.Fatal("default model config invalid")
	}
	if PaperHeatmapConfig().Height != 512 {
		t.Fatal("paper heatmap config wrong")
	}
	if PaperModelConfig().ImageSize != 512 {
		t.Fatal("paper model config wrong")
	}
	if got := AbsPctDiff(0.9, 0.85); math.Abs(got-5) > 1e-9 {
		t.Fatalf("AbsPctDiff = %v", got)
	}
	c := NewCache(CacheConfig{Sets: 4, Ways: 2})
	if c.Access(0, false) {
		t.Fatal("cold hit")
	}
}
