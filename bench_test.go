package cachebox

// This file holds one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §3) plus ablation benches for the design
// choices DESIGN.md §4 calls out. The benches exercise the exact code
// paths the experiment harness uses, at a reduced (tiny) scale so they
// run in seconds; cmd/cbx-experiments regenerates the full tables.

import (
	"fmt"
	"sync"
	"testing"

	"cachebox/internal/baseline"
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
	"cachebox/internal/metrics"
	"cachebox/internal/multicachesim"
	"cachebox/internal/tensor"
	"cachebox/internal/workload"
)

// fixture is the shared tiny-scale setup: suites, a trained
// conditioned model, and prebuilt heatmaps.
type fixture struct {
	pipe    Pipeline
	modelC  *core.Model // conditioned (2 cache params)
	train   []Benchmark
	test    []Benchmark
	access  []*Heatmap
	params  []float32
	cacheL1 CacheConfig
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		p := NewPipeline()
		p.Heatmap.Height, p.Heatmap.Width = 16, 16
		p.Heatmap.WindowInstr = 150
		p.MaxPairsPerBench = 6
		suite := SpecLike(6, 1, 20000)
		train, test := SplitBenchmarks(suite.Benchmarks, 0.8, 42)
		cfg := CacheConfig{Sets: 64, Ways: 12}
		ds, err := p.Dataset(train, []CacheConfig{cfg}, 0)
		if err != nil {
			panic(err)
		}
		mc := DefaultModelConfig()
		mc.ImageSize = 16
		mc.NGF, mc.NDF = 4, 4
		m, err := NewModel(mc)
		if err != nil {
			panic(err)
		}
		if _, err := m.Train(ds, TrainConfig{Epochs: 2, BatchSize: 4, Seed: 1}); err != nil {
			panic(err)
		}
		var access []*Heatmap
		for _, s := range ds {
			access = append(access, s.Access)
		}
		fix = &fixture{
			pipe: p, modelC: m, train: train, test: test,
			access: access, params: CacheParams(cfg), cacheL1: cfg,
		}
	})
	return fix
}

// BenchmarkHeatmapGeneration regenerates Figure 3/4's artifact: trace
// → simulate → aligned access/miss heatmap pairs.
func BenchmarkHeatmapGeneration(b *testing.B) {
	suite := PolyLike(20000, 0.2)
	bench := suite.Benchmarks[0]
	tr := bench.Trace()
	cfg := heatmap.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt := cachesim.RunTrace(cachesim.New(cachesim.Config{Sets: 64, Ways: 12}), tr)
		pairs, err := heatmap.BuildPair(cfg, lt.Accesses, lt.Misses)
		if err != nil {
			b.Fatal(err)
		}
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkFig7RQ1UnseenApps measures the per-benchmark evaluation
// loop of Figure 7: predict an unseen benchmark's miss heatmaps and
// recover its hit rate. Alongside timing it reports the hit-rate MAE
// (in percentage points), so a perf win that costs accuracy is visible
// in the same output line.
func BenchmarkFig7RQ1UnseenApps(b *testing.B) {
	f := getFixture(b)
	bench := f.test[0]
	var mae float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := f.pipe.Evaluate(f.modelC, bench, f.cacheL1, 8)
		if err != nil {
			b.Fatal(err)
		}
		mae += ev.AbsPctDiff
	}
	b.ReportMetric(mae/float64(b.N), "hitrate-mae-pp")
}

// benchWidths picks the pool widths the parallel benches compare: the
// serial path against GOMAXPROCS, or against an 8-wide pool on a
// single-CPU host (where the interesting number is the pool's overhead,
// not a speedup).
func benchWidths() []int {
	if n := DefaultWorkers(); n > 1 {
		return []int{1, n}
	}
	return []int{1, 8}
}

// BenchmarkPairGeneration measures the worker pool on the hottest
// serial path the harness had — ground-truth simulation for dataset
// assembly — at pool width 1 (the old serial path) versus the widest
// useful pool. Both widths build byte-identical datasets; only the
// wall clock may differ.
func BenchmarkPairGeneration(b *testing.B) {
	f := getFixture(b)
	cfgs := []CacheConfig{{Sets: 64, Ways: 12}, {Sets: 128, Ways: 6}}
	for _, j := range benchWidths() {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			p := f.pipe
			p.Workers = j
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Dataset(f.train, cfgs, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Evaluation measures the full fig7-style test-set
// evaluation through EvaluateAll: simulation fans out across the pool,
// prediction stays serial. The hit-rate MAE over the test set rides
// along as a metric.
func BenchmarkFig7Evaluation(b *testing.B) {
	f := getFixture(b)
	for _, j := range benchWidths() {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			p := f.pipe
			p.Workers = j
			var mae float64
			var rows int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, res := range p.EvaluateAll(f.modelC, f.test, f.cacheL1, 8) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
					mae += res.Eval.AbsPctDiff
					rows++
				}
			}
			b.ReportMetric(mae/float64(rows), "hitrate-mae-pp")
		})
	}
}

// BenchmarkFig8RQ2MultiConfig sweeps the four trained configurations
// with one conditioned model (Figure 8).
func BenchmarkFig8RQ2MultiConfig(b *testing.B) {
	f := getFixture(b)
	cfgs := []CacheConfig{{Sets: 64, Ways: 12}, {Sets: 128, Ways: 12}, {Sets: 128, Ways: 6}, {Sets: 128, Ways: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			f.modelC.Predict(f.access[:4], CacheParams(cfg), 4)
		}
	}
}

// BenchmarkFig9RQ3UnseenConfig predicts under configurations absent
// from training (Figure 9) — same cost profile, different parameters.
func BenchmarkFig9RQ3UnseenConfig(b *testing.B) {
	f := getFixture(b)
	cfgs := []CacheConfig{{Sets: 256, Ways: 6}, {Sets: 256, Ways: 12}, {Sets: 32, Ways: 12}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			f.modelC.Predict(f.access[:4], CacheParams(cfg), 4)
		}
	}
}

// BenchmarkFig10RQ4Hierarchy measures the three-level simulation and
// per-level heatmap pipeline behind Figure 10.
func BenchmarkFig10RQ4Hierarchy(b *testing.B) {
	suite := SpecLike(2, 1, 20000)
	tr := suite.Benchmarks[0].Trace()
	cfgs := []CacheConfig{{Sets: 64, Ways: 12}, {Sets: 1024, Ways: 8}, {Sets: 2048, Ways: 16}}
	hm := heatmap.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := cachesim.NewHierarchy(cfgs...)
		if err != nil {
			b.Fatal(err)
		}
		for _, lt := range cachesim.RunHierarchy(h, tr) {
			if _, err := heatmap.BuildPair(hm, lt.Accesses, lt.Misses); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig11InferenceBatch is the paper's headline parallelism
// result (Figure 11): batched inference folds each layer into one
// large GEMM, so per-heatmap cost falls as the batch grows.
func BenchmarkFig11InferenceBatch(b *testing.B) {
	f := getFixture(b)
	n := len(f.access)
	for _, bs := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.modelC.Predict(f.access, f.params, bs)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "heatmaps/s")
		})
	}
}

// BenchmarkFig11MultiCacheSim is Figure 11's comparison simulator.
func BenchmarkFig11MultiCacheSim(b *testing.B) {
	suite := SpecLike(2, 1, 50000)
	tr := suite.Benchmarks[0].Trace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := multicachesim.New(1, multicachesim.Config{Sets: 64, Ways: 12})
		if err != nil {
			b.Fatal(err)
		}
		s.RunTrace(tr)
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkFig12RQ6Response measures the scatter-point computation of
// Figure 12 (true vs predicted hit rate for one benchmark/config).
func BenchmarkFig12RQ6Response(b *testing.B) {
	f := getFixture(b)
	bench := f.test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := f.pipe.Evaluate(f.modelC, bench, f.cacheL1, 8)
		if err != nil {
			b.Fatal(err)
		}
		_ = ev.PredHit - ev.TrueHit
	}
}

// BenchmarkFig13RQ7Prefetcher measures the prefetcher-modelling path
// of Figure 13: record next-line prefetches, build paired heatmaps,
// and score MSE/SSIM.
func BenchmarkFig13RQ7Prefetcher(b *testing.B) {
	suite := SpecLike(2, 1, 20000)
	tr := suite.Benchmarks[0].Trace()
	hm := heatmap.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cachesim.New(cachesim.Config{Sets: 64, Ways: 12})
		rec := &cachesim.RecordingPrefetcher{Inner: &cachesim.NextLinePrefetcher{}}
		c.Prefetcher = rec
		cachesim.RunTrace(c, tr)
		pf := heatmap.PrefetchTrace("pf", rec.Records, 6)
		am, err := heatmap.Build(hm, tr, tr.Accesses[0].IC)
		if err != nil {
			b.Fatal(err)
		}
		pm, err := heatmap.Build(hm, pf, tr.Accesses[0].IC)
		if err != nil {
			b.Fatal(err)
		}
		if len(am) > 0 && len(pm) > 0 {
			if _, err := metrics.SSIM(am[0], pm[0], 0); err != nil {
				b.Fatal(err)
			}
			if _, err := metrics.MSE(am[0], pm[0]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig14HitRateHistogram measures the dataset analysis of
// Figure 14: simulate the suite and histogram true hit rates.
func BenchmarkFig14HitRateHistogram(b *testing.B) {
	suite := SpecLike(4, 1, 10000)
	traces := make([]*Trace, len(suite.Benchmarks))
	for i, bench := range suite.Benchmarks {
		traces[i] = bench.Trace()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rates []float64
		for _, tr := range traces {
			lt := cachesim.RunTrace(cachesim.New(cachesim.Config{Sets: 64, Ways: 12}), tr)
			rates = append(rates, lt.HitRate())
		}
		metrics.RateHistogram(rates, 20)
	}
}

// BenchmarkTable1Baselines measures the statistical predictors of
// Table 1 (HRD, STM, tabular synthesiser variants) on one trace.
func BenchmarkTable1Baselines(b *testing.B) {
	suite := SpecLike(2, 1, 20000)
	tr := suite.Benchmarks[0].Trace()
	cfg := cachesim.Config{Sets: 64, Ways: 12}
	preds := []baseline.Predictor{
		&baseline.HRD{},
		&baseline.STM{Seed: 1},
		&baseline.Tabular{Variant: baseline.TabBase, Seed: 1},
		&baseline.Tabular{Variant: baseline.TabRD, Seed: 1},
		&baseline.Tabular{Variant: baseline.TabIC, Seed: 1},
	}
	for _, p := range preds {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.PredictMissRate(tr, cfg)
			}
		})
	}
}

// BenchmarkAblationOverlap sweeps the heatmap overlap fraction
// (DESIGN.md §4.1; the paper fixes 30%).
func BenchmarkAblationOverlap(b *testing.B) {
	suite := SpecLike(2, 1, 20000)
	tr := suite.Benchmarks[0].Trace()
	lt := cachesim.RunTrace(cachesim.New(cachesim.Config{Sets: 64, Ways: 12}), tr)
	for _, ov := range []float64{0, 0.15, 0.30, 0.50} {
		b.Run(fmt.Sprintf("overlap=%.0f%%", ov*100), func(b *testing.B) {
			cfg := heatmap.DefaultConfig()
			cfg.Overlap = ov
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pairs, err := heatmap.BuildPair(cfg, lt.Accesses, lt.Misses)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(pairs)), "pairs")
			}
		})
	}
}

// BenchmarkAblationModulo sweeps the heatmap height (the address
// modulo; DESIGN.md §4.2; the paper picks 512).
func BenchmarkAblationModulo(b *testing.B) {
	suite := SpecLike(2, 1, 20000)
	tr := suite.Benchmarks[0].Trace()
	lt := cachesim.RunTrace(cachesim.New(cachesim.Config{Sets: 64, Ways: 12}), tr)
	for _, h := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("modulo=%d", h), func(b *testing.B) {
			cfg := heatmap.DefaultConfig()
			cfg.Height = h
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := heatmap.BuildPair(cfg, lt.Accesses, lt.Misses); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLambda measures a training step at different L1
// weights (DESIGN.md §4.4; the paper uses λ=150).
func BenchmarkAblationLambda(b *testing.B) {
	f := getFixture(b)
	ds, err := f.pipe.Dataset(f.train[:2], []CacheConfig{f.cacheL1}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, lambda := range []float64{0, 50, 150, 300} {
		b.Run(fmt.Sprintf("lambda=%.0f", lambda), func(b *testing.B) {
			mc := DefaultModelConfig()
			mc.ImageSize = 16
			mc.NGF, mc.NDF = 4, 4
			mc.Lambda = lambda
			m, err := NewModel(mc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Train(ds[:4], TrainConfig{Epochs: 1, BatchSize: 4, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGEMM measures the tensor substrate's core kernel at a
// CB-GAN-typical shape.
func BenchmarkGEMM(b *testing.B) {
	a := make([]float32, 128*256)
	bb := make([]float32, 256*256)
	c := make([]float32, 128*256)
	for i := range a {
		a[i] = float32(i%7) - 3
	}
	for i := range bb {
		bb[i] = float32(i%5) - 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(c, a, bb, 128, 256, 256, false)
	}
	b.ReportMetric(2*128*256*256*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkCacheSimThroughput measures the ground-truth simulator, the
// substrate every experiment's truth column depends on.
func BenchmarkCacheSimThroughput(b *testing.B) {
	suite := workload.SpecLike(2, 1, 50000)
	tr := suite.Benchmarks[0].Trace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cachesim.RunTrace(cachesim.New(cachesim.Config{Sets: 64, Ways: 12}), tr)
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}
