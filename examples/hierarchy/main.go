// Hierarchy demonstrates the paper's RQ4 setup: simulate an
// L1/L2/L3 cache hierarchy where each level's input stream is the
// miss stream of the level above, inspect how the access volume and
// hit rate change down the hierarchy, and render per-level heatmaps.
//
// Run it with:
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cachebox"
)

func main() {
	levels := []cachebox.CacheConfig{
		{Sets: 64, Ways: 12},   // 48 KiB L1
		{Sets: 1024, Ways: 8},  // 512 KiB L2
		{Sets: 2048, Ways: 16}, // 2 MiB L3
	}
	hier, err := cachebox.NewHierarchy(levels...)
	if err != nil {
		log.Fatal(err)
	}

	suite := cachebox.LigraLike(150000, 0.3)
	bench := suite.Benchmarks[1] // a BFS over a large power-law graph
	fmt.Printf("benchmark: %s\n\n", bench.Name)

	lts := cachebox.RunHierarchy(hier, bench.Trace())
	fmt.Printf("%-4s %-18s %10s %10s %10s %9s\n", "lvl", "config", "accesses", "hits", "misses", "hit-rate")
	for i, lt := range lts {
		fmt.Printf("L%-3d %-18s %10d %10d %10d %9.4f\n",
			i+1, lt.Config, lt.Stats.Accesses, lt.Stats.Hits, lt.Stats.Misses, lt.HitRate())
	}

	// Each level's streams convert to heatmap pairs with the same
	// pipeline the GAN trains on; render L1 and L2 for comparison.
	hm := cachebox.DefaultHeatmapConfig()
	outDir := "hierarchy-heatmaps"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, lt := range lts[:2] {
		pairs, err := cachebox.BuildHeatmapPairs(hm, lt.Accesses, lt.Misses)
		if err != nil {
			log.Fatal(err)
		}
		if len(pairs) == 0 {
			fmt.Printf("L%d stream too short for a full heatmap\n", i+1)
			continue
		}
		a := filepath.Join(outDir, fmt.Sprintf("l%d-access.png", i+1))
		m := filepath.Join(outDir, fmt.Sprintf("l%d-miss.png", i+1))
		if err := cachebox.WriteHeatmapPNG(a, pairs[0].Access); err != nil {
			log.Fatal(err)
		}
		if err := cachebox.WriteHeatmapPNG(m, pairs[0].Miss); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L%d: %d heatmap pairs; wrote %s, %s\n", i+1, len(pairs), a, m)
	}

	// The same streams feed per-level CB-GAN training — see
	// cmd/cbx-experiments -run fig10 for the full RQ4 reproduction.
	fmt.Println("\nNote how each level filters the stream: fewer accesses, lower hit rates.")
}
