// Resume demonstrates CacheBox's resumable training checkpoints: a
// training run is interrupted partway, then restarted with -resume
// semantics, and the resumed model is shown to be bit-identical to a
// never-interrupted run. Checkpoints capture everything training
// consumes — weights, both Adam optimiser states, dropout RNG cursors
// and the shuffle epoch counter — so an interruption costs at most one
// checkpoint interval of work and changes nothing about the result.
//
// Run it with:
//
//	go run ./examples/resume
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cachebox"
)

const (
	epochs    = 6 // full run length
	killAfter = 3 // the "interrupted" run dies after this many epochs
)

func main() {
	// 1. A small training dataset (see examples/quickstart for the
	// full-pipeline walkthrough).
	suite := cachebox.SpecLike(2, 1, 20000)
	pipe := cachebox.NewPipeline()
	pipe.MaxPairsPerBench = 4
	cacheCfg := cachebox.CacheConfig{Sets: 64, Ways: 12}
	dataset, err := pipe.Dataset(suite.Benchmarks, []cachebox.CacheConfig{cacheCfg}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d heatmap pairs\n", len(dataset))

	dir, err := os.MkdirTemp("", "cbx-resume-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		//lint:ignore unchecked-error best-effort cleanup of a temp directory at exit
		os.RemoveAll(dir)
	}()
	ckpt := filepath.Join(dir, "train.ckpt")

	// 2. The reference: one uninterrupted run.
	fmt.Printf("\nreference run: %d epochs straight through\n", epochs)
	reference := train(dataset, cachebox.TrainConfig{
		Epochs: epochs, BatchSize: 4, Seed: 1,
	})

	// 3. The "interrupted" run: same model, same options, but the
	// process dies after killAfter epochs. Checkpoints are written
	// atomically every epoch, so the last one survives any crash.
	fmt.Printf("\ninterrupted run: killed after epoch %d (checkpoint every epoch)\n", killAfter)
	train(dataset, cachebox.TrainConfig{
		Epochs: killAfter, BatchSize: 4, Seed: 1,
		Checkpoint: cachebox.TrainCheckpointPolicy{Every: 1, Path: ckpt},
	})

	// 4. Resume: load the checkpoint and ask for the full run. Training
	// restores the optimiser states and RNG cursors, replays the shuffle
	// sequence of the completed epochs, and continues from epoch
	// killAfter as if nothing had happened. A checkpoint from a
	// different run (other seed, batch size or dataset) is refused with
	// cachebox.ErrBadCheckpoint instead of silently diverging.
	c, err := cachebox.LoadCheckpointFile(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresumed run: epochs %d..%d from %s\n", killAfter, epochs, filepath.Base(ckpt))
	resumed := train(dataset, cachebox.TrainConfig{
		Epochs: epochs, BatchSize: 4, Seed: 1,
		ResumeFrom: c,
	})

	// 5. The payoff: the resumed model is the reference model, bit for
	// bit.
	if !bytes.Equal(reference, resumed) {
		log.Fatal("resumed weights differ from the uninterrupted run")
	}
	fmt.Printf("\nresumed model is bit-identical to the uninterrupted run (%d serialised bytes)\n", len(reference))
}

// train runs one training session on a fresh model with a fixed config
// and returns the trained model's serialised bytes.
func train(dataset []cachebox.Sample, opt cachebox.TrainConfig) []byte {
	m, err := cachebox.NewModel(cachebox.DefaultModelConfig())
	if err != nil {
		log.Fatal(err)
	}
	opt.Log = os.Stdout
	if _, err := m.Train(dataset, opt); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
