// Quickstart walks the full CacheBox workflow end-to-end on a tiny
// budget: generate a synthetic benchmark suite, simulate an L1 cache
// to get ground-truth miss streams, convert them to heatmap pairs,
// train a small CB-GAN, and predict an unseen benchmark's hit rate.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"cachebox"
)

func main() {
	// 1. Build a benchmark suite. Suites are deterministic, so there
	// are no trace files to download.
	suite := cachebox.SpecLike(8, 1, 40000)
	train, test := cachebox.SplitBenchmarks(suite.Benchmarks, 0.8, 7)
	fmt.Printf("suite: %d benchmarks (%d train, %d held out)\n",
		len(suite.Benchmarks), len(train), len(test))

	// 2. Pick the cache to learn: the paper's 64set-12way L1D.
	cacheCfg := cachebox.CacheConfig{Sets: 64, Ways: 12}

	// 3. Simulate + build aligned access/miss heatmap pairs for every
	// training benchmark. The pipeline applies the paper's §6.1
	// high-data-regime rule (L1 hit rate above 65%).
	pipe := cachebox.NewPipeline()
	pipe.MaxPairsPerBench = 12
	dataset, err := pipe.Dataset(train, []cachebox.CacheConfig{cacheCfg}, 0.65)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d heatmap pairs\n", len(dataset))

	// 4. Train a small CB-GAN. (The default config trades accuracy
	// for speed; see cmd/cbx-experiments for the calibrated runs.)
	modelCfg := cachebox.DefaultModelConfig()
	model, err := cachebox.NewModel(modelCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training (a couple of minutes on one CPU core)...")
	if _, err := model.Train(dataset, cachebox.TrainConfig{
		Epochs: 15, BatchSize: 8, Seed: 1, Log: os.Stdout,
	}); err != nil {
		log.Fatal(err)
	}

	// 5. Predict hit rates for the held-out benchmarks and compare
	// against the simulator's ground truth.
	fmt.Println("\nheld-out benchmarks:")
	for _, b := range test {
		ev, err := pipe.Evaluate(model, b, cacheCfg, 8)
		if err != nil {
			fmt.Printf("  %-30s skipped: %v\n", b.Name, err)
			continue
		}
		fmt.Printf("  %-30s true hit %.4f  predicted %.4f  |diff| %.2f%%\n",
			ev.Bench, ev.TrueHit, ev.PredHit, ev.AbsPctDiff)
	}

	// 6. Models serialise to a single file.
	if err := model.SaveFile("quickstart.cbgan"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodel saved to quickstart.cbgan")
}
