// Designspace demonstrates the paper's RQ2/RQ3 use case: train ONE
// cache-parameter-conditioned CB-GAN on several L1 geometries, then
// sweep a design space — including configurations the model never saw
// — without retraining or resimulating, and compare the predicted
// hit rates against the simulator.
//
// Run it with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"cachebox"
)

func main() {
	trainConfigs := []cachebox.CacheConfig{
		{Sets: 64, Ways: 12},
		{Sets: 128, Ways: 12},
		{Sets: 128, Ways: 6},
		{Sets: 128, Ways: 3},
	}
	sweepConfigs := append([]cachebox.CacheConfig{},
		trainConfigs...,
	)
	// Configurations absent from training (the paper's RQ3).
	sweepConfigs = append(sweepConfigs,
		cachebox.CacheConfig{Sets: 256, Ways: 6},
		cachebox.CacheConfig{Sets: 256, Ways: 12},
		cachebox.CacheConfig{Sets: 32, Ways: 12},
	)

	suite := cachebox.SpecLike(10, 1, 40000)
	train, test := cachebox.SplitBenchmarks(suite.Benchmarks, 0.8, 11)

	pipe := cachebox.NewPipeline()
	pipe.MaxPairsPerBench = 8
	dataset, err := pipe.Dataset(train, trainConfigs, 0.65)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training one conditioned model on %d samples over %d configurations...\n",
		len(dataset), len(trainConfigs))
	model, err := cachebox.NewModel(cachebox.DefaultModelConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Train(dataset, cachebox.TrainConfig{Epochs: 12, BatchSize: 8, Seed: 2}); err != nil {
		log.Fatal(err)
	}

	// Sweep: for each geometry, predict each held-out benchmark.
	seen := map[string]bool{}
	for _, c := range trainConfigs {
		seen[c.String()] = true
	}
	fmt.Printf("\n%-16s %-28s %9s %9s %9s\n", "config", "benchmark", "true", "pred", "|diff|%")
	for _, cfg := range sweepConfigs {
		tag := cfg.String()
		if !seen[tag] {
			tag += " (unseen)"
		}
		for _, b := range test {
			ev, err := pipe.Evaluate(model, b, cfg, 8)
			if err != nil || ev.TrueHit < 0.65 {
				continue
			}
			fmt.Printf("%-16s %-28s %9.4f %9.4f %8.2f%%\n",
				tag, ev.Bench, ev.TrueHit, ev.PredHit, ev.AbsPctDiff)
		}
	}
	fmt.Println("\nA single model served the whole sweep — no per-configuration retraining.")
	fmt.Println("(This demo trains for seconds; run `cbx-experiments -run fig8,fig9` for the")
	fmt.Println("calibrated version, which reaches ~2-3% error at small scale.)")
}
