// Prefetcher demonstrates the paper's RQ7 extension: CacheBox's
// heatmap representation is not cache-specific — here a CB-GAN learns
// the behaviour of a next-line prefetcher, mapping access heatmaps to
// the heatmaps of the addresses the prefetcher issues, evaluated with
// MSE and SSIM as in Figure 13.
//
// Run it with:
//
//	go run ./examples/prefetcher
package main

import (
	"fmt"
	"log"

	"cachebox"
	"cachebox/internal/cachesim"
	"cachebox/internal/core"
	"cachebox/internal/heatmap"
)

func main() {
	suite := cachebox.SpecLike(8, 1, 60000)
	train, test := cachebox.SplitBenchmarks(suite.Benchmarks, 0.8, 13)
	l1 := cachebox.CacheConfig{Sets: 64, Ways: 12}
	hm := cachebox.DefaultHeatmapConfig()
	params := cachebox.CacheParams(l1)

	// Build access→prefetch heatmap pairs: run each benchmark through
	// an L1 with a recording next-line prefetcher and heatmap both the
	// demand stream and the prefetched addresses.
	buildPairs := func(b cachebox.Benchmark) []heatmap.Pair {
		c := cachesim.New(l1)
		rec := &cachesim.RecordingPrefetcher{Inner: &cachesim.NextLinePrefetcher{}}
		c.Prefetcher = rec
		tr := b.Trace()
		cachesim.RunTrace(c, tr)
		pf := heatmap.PrefetchTrace(b.Name+".prefetch", rec.Records, 6)
		base := tr.Accesses[0].IC
		am, err := heatmap.Build(hm, tr, base)
		if err != nil {
			log.Fatal(err)
		}
		pm, err := heatmap.Build(hm, pf, base)
		if err != nil {
			log.Fatal(err)
		}
		n := len(am)
		if len(pm) < n {
			n = len(pm)
		}
		if n > 10 {
			n = 10
		}
		pairs := make([]heatmap.Pair, n)
		for i := 0; i < n; i++ {
			pairs[i] = heatmap.Pair{Access: am[i], Miss: pm[i]}
		}
		return pairs
	}

	var dataset []cachebox.Sample
	for _, b := range train {
		for _, pr := range buildPairs(b) {
			dataset = append(dataset, cachebox.Sample{Access: pr.Access, Miss: pr.Miss, Params: params, Bench: b.Name})
		}
	}
	fmt.Printf("training on %d access/prefetch pairs...\n", len(dataset))

	cfg := cachebox.DefaultModelConfig()
	cfg.MissPixelCap = cfg.PixelCap // prefetch maps are as dense as access maps
	model, err := core.NewModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Train(dataset, cachebox.TrainConfig{Epochs: 12, BatchSize: 8, Seed: 3}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-30s %12s %8s\n", "benchmark", "MSE", "SSIM")
	for _, b := range test {
		pairs := buildPairs(b)
		if len(pairs) == 0 {
			continue
		}
		var access, real []*cachebox.Heatmap
		for _, pr := range pairs {
			access = append(access, pr.Access)
			real = append(real, pr.Miss)
		}
		pred := model.Predict(access, params, 8)
		var mse, ssim float64
		for i := range pred {
			mv, err := cachebox.MSE(pred[i], real[i])
			if err != nil {
				log.Fatal(err)
			}
			sv, err := cachebox.SSIM(pred[i], real[i], float64(cfg.PixelCap))
			if err != nil {
				log.Fatal(err)
			}
			mse += mv / float64(len(pred))
			ssim += sv / float64(len(pred))
		}
		fmt.Printf("%-30s %12.4f %8.4f\n", b.Name, mse, ssim)
	}
	fmt.Println("\nHigh SSIM / low MSE means the GAN reproduces the prefetcher's address stream.")
}
